//! Seeded mutants: intentionally broken Algorithm 2 variants that the
//! oracle **must** reject — the mutation smoke test that keeps the
//! `model_check` CI job fail-closed.
//!
//! A model checker that silently passes everything is worse than none, so
//! CI runs the checker against each [`Mutation`] and fails unless a
//! violation is found. [`MutantNode`] is a deliberately independent,
//! minimal re-implementation of Algorithm 2 (it need not be bit-identical
//! to [`GradientNode`](gcs_core::GradientNode) — only behaviorally
//! correct when unmutated), with the mutation applied at one precise
//! point:
//!
//! * [`Mutation::LmaxOverwrite`] — `on_receive` *overwrites* `Lmax_u`
//!   with the sender's estimate instead of raising to it. A node ahead of
//!   its neighbor then lowers its max estimate below its own logical
//!   clock, violating **Property 6.3** the moment a slow node's message
//!   reaches a fast one.
//! * [`Mutation::MissingHeadroomClause`] — the blocked predicate is
//!   reported without Definition 6.1's `Lmax_u > L_u` conjunct: the node
//!   claims to be blocked whenever *any* neighbor estimate exceeds its
//!   budget, even while `L_u = Lmax_u`. The recomputed predicate
//!   disagrees at any state where the max-holding node faces a far-behind
//!   neighbor — reachable with wide margin by bridging two long-isolated
//!   components under the constant-budget baseline policy.
//! * [`Mutation::None`] — the unmutated control; the oracle must accept
//!   it on the same schedules (this pins that rejections come from the
//!   mutation, not from the re-implementation being wrong).

use crate::model::{ModelNode, NodeProbe};
use gcs_clocks::ClockVar;
use gcs_core::{predicate, AlgoParams};
use gcs_net::NodeId;
use gcs_sim::{Automaton, Context, LinkChange, LinkChangeKind, Message, TimerKind};
use std::collections::BTreeMap;

/// Which defect to inject (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Unmutated control — must pass the oracle.
    None,
    /// `on_receive` overwrites `Lmax` instead of raising — breaks
    /// Property 6.3.
    LmaxOverwrite,
    /// The blocked report drops the `Lmax_u > L_u` clause — breaks
    /// Definition 6.1 agreement.
    MissingHeadroomClause,
}

/// A minimal independent Algorithm 2 node with an injectable defect.
#[derive(Clone, Debug)]
pub struct MutantNode {
    algo: AlgoParams,
    mutation: Mutation,
    l: ClockVar,
    lmax: ClockVar,
    gamma: BTreeMap<NodeId, (f64, ClockVar)>,
    upsilon: Vec<NodeId>,
}

impl MutantNode {
    /// A fresh node at `L = Lmax = 0` with the given defect.
    pub fn new(algo: AlgoParams, mutation: Mutation) -> Self {
        MutantNode {
            algo,
            mutation,
            l: ClockVar::zeroed(),
            lmax: ClockVar::zeroed(),
            gamma: BTreeMap::new(),
            upsilon: Vec::new(),
        }
    }

    fn caps(&self, hw: f64) -> Vec<(f64, f64)> {
        self.gamma
            .iter()
            .map(|(_, (joined_hw, estimate))| {
                let budget = predicate::effective_budget(
                    self.algo.budget_unfloored(hw - joined_hw),
                    self.algo.b0,
                );
                (estimate.value(hw), budget)
            })
            .collect()
    }

    fn adjust_clock(&mut self, hw: f64) {
        let target = predicate::advance_target(self.lmax.value(hw), self.caps(hw));
        if predicate::should_jump(target, self.l.value(hw)) {
            self.l.set(target, hw);
        }
    }

    fn message(&self, hw: f64) -> Message {
        Message {
            logical: self.l.value(hw),
            max_estimate: self.lmax.value(hw),
        }
    }

    fn upsilon_insert(&mut self, v: NodeId) {
        if let Err(i) = self.upsilon.binary_search(&v) {
            self.upsilon.insert(i, v);
        }
    }
}

impl Automaton for MutantNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.algo.delta_h, TimerKind::Tick);
    }

    fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message) {
        ctx.cancel_timer(TimerKind::Lost(from));
        self.upsilon_insert(from);
        match self.gamma.get_mut(&from) {
            Some((_, estimate)) => estimate.overwrite(msg.logical, ctx.hw),
            None => {
                self.gamma
                    .insert(from, (ctx.hw, ClockVar::with_value(msg.logical, ctx.hw)));
            }
        }
        match self.mutation {
            // The defect: take the sender's estimate verbatim, even when
            // it is *below* ours (and below our own logical clock).
            Mutation::LmaxOverwrite => self.lmax.overwrite(msg.max_estimate, ctx.hw),
            _ => self.lmax.raise_to(msg.max_estimate, ctx.hw),
        }
        self.adjust_clock(ctx.hw);
        ctx.set_timer(self.algo.delta_t_prime(), TimerKind::Lost(from));
    }

    fn on_discover(&mut self, ctx: &mut Context<'_>, change: LinkChange) {
        let other = change.edge.other(ctx.node);
        match change.kind {
            LinkChangeKind::Added => {
                ctx.send(other, self.message(ctx.hw));
                self.upsilon_insert(other);
            }
            LinkChangeKind::Removed => {
                self.gamma.remove(&other);
                if let Ok(i) = self.upsilon.binary_search(&other) {
                    self.upsilon.remove(i);
                }
            }
        }
        self.adjust_clock(ctx.hw);
    }

    fn on_alarm(&mut self, ctx: &mut Context<'_>, kind: TimerKind) {
        match kind {
            TimerKind::Lost(v) => {
                self.gamma.remove(&v);
                self.adjust_clock(ctx.hw);
            }
            TimerKind::Tick => {
                let msg = self.message(ctx.hw);
                for &v in &self.upsilon {
                    ctx.send(v, msg);
                }
                self.adjust_clock(ctx.hw);
                ctx.set_timer(self.algo.delta_h, TimerKind::Tick);
            }
        }
    }

    fn logical_clock(&self, hw: f64) -> f64 {
        self.l.value(hw)
    }

    fn max_estimate(&self, hw: f64) -> f64 {
        self.lmax.value(hw)
    }

    fn try_reboot(&self) -> Result<Self, gcs_sim::RebootUnsupported> {
        Ok(MutantNode::new(self.algo, self.mutation))
    }
}

impl ModelNode for MutantNode {
    fn probe(&self, hw: f64) -> NodeProbe {
        let caps = self.caps(hw);
        let l = self.l.value(hw);
        let lmax = self.lmax.value(hw);
        let blocked = match self.mutation {
            // The defect: drop the headroom conjunct — report any
            // over-budget neighbor as blocking, even at L = Lmax.
            Mutation::MissingHeadroomClause => caps
                .iter()
                .any(|&(estimate, budget)| predicate::neighbor_blocks(l, estimate, budget)),
            _ => predicate::is_blocked(l, lmax, caps.iter().copied()),
        };
        NodeProbe {
            logical: l,
            max_estimate: lmax,
            blocked,
            caps,
        }
    }

    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.l.offset().to_bits());
        out.push(self.lmax.offset().to_bits());
        out.push(self.gamma.len() as u64);
        for (v, (joined_hw, estimate)) in &self.gamma {
            out.push(v.index() as u64);
            out.push(joined_hw.to_bits());
            out.push(estimate.offset().to_bits());
        }
        out.push(self.upsilon.len() as u64);
        for v in &self.upsilon {
            out.push(v.index() as u64);
        }
    }
}

/// The schedule used by the mutation smoke test for `mutation`: a
/// deterministic scenario on which the mutated node must violate an
/// invariant while [`Mutation::None`] passes. Returns the scenario and
/// the worst-case scripted delay (every send takes the full `T`).
pub fn smoke_scenario(mutation: Mutation) -> crate::model::Scenario {
    use gcs_net::{node, Edge};
    let model = gcs_sim::ModelParams::new(0.4, 1.0, 2.0);
    match mutation {
        // Two drifting nodes on a live edge: the fast node receives the
        // slow node's (lower) max estimate within a few exchanges.
        Mutation::None | Mutation::LmaxOverwrite => crate::model::Scenario {
            name: format!("mutant-{mutation:?}"),
            algo: AlgoParams::with_minimal_b0(model, 2, 0.5),
            rates: vec![1.4, 0.6],
            initial_edges: vec![Edge::new(node(0), node(1))],
            topology: Vec::new(),
            faults: Vec::new(),
            delay_choices: vec![1.0],
            horizon: 6.0,
        },
        // Two components drift apart for 40 time units, then a bridge
        // edge appears: under the constant-budget baseline the skew
        // (0.8·40 = 32) far exceeds B0, so the fast node sees its new
        // neighbor more than a full budget behind while holding the max
        // itself — the dropped headroom clause misreports with ~11 units
        // of slack, no floating-point boundary in sight.
        Mutation::MissingHeadroomClause => {
            let algo =
                AlgoParams::with_policy(model, 2, 0.5, 21.0, gcs_core::BudgetPolicy::Constant);
            crate::model::Scenario {
                name: format!("mutant-{mutation:?}"),
                algo,
                rates: vec![1.4, 0.6],
                initial_edges: Vec::new(),
                topology: vec![TopologyEvent::add_at(40.0, Edge::new(node(0), node(1)))],
                faults: Vec::new(),
                delay_choices: vec![1.0],
                horizon: 46.0,
            }
        }
    }
}

use gcs_net::TopologyEvent;

/// Runs `mutation` through its smoke scenario under worst-case (full-`T`)
/// delays and returns the first violation, if any.
pub fn smoke_run(mutation: Mutation) -> Option<crate::oracle::Violation> {
    use crate::model::{DelayDecider, Model};
    use crate::oracle::Oracle;
    let sc = smoke_scenario(mutation);
    sc.validate();
    let mut m = Model::new(&sc, |_| MutantNode::new(sc.algo, mutation));
    let mut oracle = Oracle::new(sc.algo.n);
    let mut decider = DelayDecider::scripted(Vec::new(), sc.algo.model.t);
    m.run(sc.horizon, &mut decider, |m, _| oracle.check(m));
    oracle.violation().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmutated_control_passes_both_smoke_scenarios() {
        assert_eq!(smoke_run(Mutation::None), None);
        // The control must also pass the bridge scenario the headroom
        // mutant runs on.
        let sc = smoke_scenario(Mutation::MissingHeadroomClause);
        let mut m = crate::model::Model::new(&sc, |_| MutantNode::new(sc.algo, Mutation::None));
        let mut oracle = crate::oracle::Oracle::new(sc.algo.n);
        let mut decider = crate::model::DelayDecider::scripted(Vec::new(), sc.algo.model.t);
        m.run(sc.horizon, &mut decider, |m, _| oracle.check(m));
        assert_eq!(oracle.violation(), None);
    }

    #[test]
    fn lmax_overwrite_violates_property_6_3() {
        let v = smoke_run(Mutation::LmaxOverwrite).expect("mutant must be caught");
        assert!(v.message.contains("Property 6.3"), "{v}");
    }

    #[test]
    fn missing_headroom_clause_violates_definition_6_1() {
        let v = smoke_run(Mutation::MissingHeadroomClause).expect("mutant must be caught");
        assert!(v.message.contains("Definition 6.1"), "{v}");
    }
}
