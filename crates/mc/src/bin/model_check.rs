//! Fail-closed model-check driver for CI.
//!
//! Runs, in order:
//!
//! 1. the bounded exhaustive explorer over the full scenario suites at
//!    `n = 2, 3, 4`, writing any counterexample to
//!    `target/mc/<scenario>.itf.json` and exiting non-zero;
//! 2. the mutation smoke test — every seeded mutant must be caught and
//!    the unmutated control must pass (a checker that stops rejecting
//!    mutants fails the build, not just the mutant);
//! 3. a trace-replay round trip — an explorer-exported trace must parse
//!    back from JSON and replay through the real engine bit-identically
//!    at 1 and 8 worker threads;
//! 4. a bounded randomized fuzz batch over the same oracle.
//!
//! Prints one summary line per stage (states, runs, max depth, wall
//! time) that `run_all` scrapes into `BENCH_engine.json`.

use gcs_core::GradientNode;
use gcs_mc::mutant::{smoke_run, Mutation};
use gcs_mc::{explore, fuzz, replay_trace, Trace};
use std::io::Write as _;
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("model_check: FAIL: {msg}");
    std::process::exit(1);
}

fn write_counterexample(name: &str, trace: &Trace) -> String {
    let dir = std::path::Path::new("target/mc");
    std::fs::create_dir_all(dir).expect("create target/mc");
    let path = dir.join(format!("{name}.itf.json"));
    let mut f = std::fs::File::create(&path).expect("create trace file");
    f.write_all(trace.to_json().as_bytes())
        .expect("write trace");
    path.display().to_string()
}

fn main() {
    let mut failed = false;

    // Stage 1: bounded exhaustive exploration, n = 2..=4.
    for n in 2..=4usize {
        let start = Instant::now();
        let mut runs = 0usize;
        let mut states = 0usize;
        let mut max_depth = 0usize;
        for sc in explore::suite(n) {
            let report = explore::explore(&sc, |_| GradientNode::new(sc.algo), 2_000_000);
            runs += report.runs;
            states += report.states;
            max_depth = max_depth.max(report.max_depth);
            if let Some((trace, message)) = &report.violation {
                let path = write_counterexample(&sc.name, trace);
                eprintln!("model_check: counterexample written to {path}");
                eprintln!("model_check: {}: {message}", sc.name);
                failed = true;
            }
        }
        println!(
            "model_check: explore n={n}: {states} states, {runs} runs, \
             max depth {max_depth}, {:.2}s",
            start.elapsed().as_secs_f64()
        );
    }
    if failed {
        fail("explorer found invariant violations (traces in target/mc/)");
    }

    // Stage 2: mutation smoke — fail closed.
    let start = Instant::now();
    if let Some(v) = smoke_run(Mutation::None) {
        fail(&format!("unmutated control was rejected: {v}"));
    }
    for (mutation, expect) in [
        (Mutation::LmaxOverwrite, "Property 6.3"),
        (Mutation::MissingHeadroomClause, "Definition 6.1"),
    ] {
        match smoke_run(mutation) {
            Some(v) if v.message.contains(expect) => {}
            Some(v) => fail(&format!(
                "mutant {mutation:?} caught, but for the wrong invariant: {v}"
            )),
            None => fail(&format!(
                "mutant {mutation:?} was NOT caught — the checker has gone soft"
            )),
        }
    }
    println!(
        "model_check: mutation smoke: 2 mutants caught, control clean, {:.2}s",
        start.elapsed().as_secs_f64()
    );

    // Stage 3: ITF export → parse → engine replay at 1 and 8 threads.
    let start = Instant::now();
    let suite = explore::suite(2);
    let sc = &suite[0];
    let (trace, oracle) =
        explore::trace_of_trail(sc, |_| GradientNode::new(sc.algo), vec![1, 0, 1, 1]);
    if let Some(v) = oracle.violation() {
        fail(&format!(
            "replay source scenario unexpectedly violates: {v}"
        ));
    }
    let parsed = match Trace::from_json(&trace.to_json()) {
        Ok(t) => t,
        Err(e) => fail(&format!("exported trace failed to parse: {e}")),
    };
    if parsed != trace {
        fail("trace JSON round trip is not the identity");
    }
    for threads in [1usize, 8] {
        if let Err(e) = replay_trace(&parsed, threads) {
            fail(&format!("engine replay diverged at {threads} threads: {e}"));
        }
    }
    println!(
        "model_check: replay round trip: {} states bit-identical at 1 and 8 \
         threads, {:.2}s",
        parsed.states.len(),
        start.elapsed().as_secs_f64()
    );

    // Stage 4: bounded fuzz batch.
    let start = Instant::now();
    let outcome = fuzz(0x6c50, 24);
    if let Some((trace, message)) = &outcome.violation {
        let path = write_counterexample("fuzz", trace);
        eprintln!("model_check: counterexample written to {path}");
        fail(&format!("fuzz found a violation: {message}"));
    }
    println!(
        "model_check: fuzz: {} schedules, {} instants checked, {:.2}s",
        outcome.iterations,
        outcome.instants_checked,
        start.elapsed().as_secs_f64()
    );

    println!("model_check: OK");
}
