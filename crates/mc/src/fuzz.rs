//! Randomized long-schedule fuzzing over the same invariant oracle.
//!
//! The bounded explorer is exhaustive but shallow; the fuzzer is the
//! complementary probe — long horizons, continuous delay draws in
//! `[0, T]` (not just the exploration quantization), randomized churn and
//! crash/restart schedules — all checked by the same [`Oracle`] at every
//! instant. A violation is **greedily shrunk** before export: the horizon
//! is truncated at the violating instant, fault and topology events are
//! dropped one at a time, and every recorded delay is snapped toward `0`
//! or `T`, keeping each mutation only if the violation survives a
//! deterministic scripted re-run. The shrunken schedule is exported as an
//! ITF [`Trace`] exactly like an explorer counterexample.
//!
//! [`fuzz`] drives the production [`GradientNode`]; the generic
//! [`fuzz_with`] accepts any [`ModelNode`] factory so the mutation smoke
//! test can prove the fuzzer + shrinker pipeline actually catches and
//! minimizes defects.

use crate::itf::Trace;
use crate::model::{DelayDecider, Model, ModelNode, Scenario};
use crate::oracle::{Oracle, Violation};
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::{node, Edge, TopologyEvent};
use gcs_sim::{FaultEvent, ModelParams};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Result of a fuzz batch.
#[derive(Clone, Debug)]
pub struct FuzzOutcome {
    /// Schedules executed.
    pub iterations: usize,
    /// Total instants checked by the oracle across all schedules.
    pub instants_checked: u64,
    /// First violation found, as `(shrunken trace, violation message)` —
    /// `None` means every schedule passed every invariant.
    pub violation: Option<(Trace, String)>,
}

/// Fuzzes the production Algorithm 2 node for `iterations` randomized
/// schedules derived from `seed`. See module docs.
pub fn fuzz(seed: u64, iterations: usize) -> FuzzOutcome {
    fuzz_with(seed, iterations, |sc: &Scenario| {
        let algo = sc.algo;
        move |_| GradientNode::new(algo)
    })
}

/// Generic fuzz driver: `mk` builds a per-scenario node factory (the
/// scenario carries the [`AlgoParams`] the nodes need).
pub fn fuzz_with<N, F, G>(seed: u64, iterations: usize, mk: F) -> FuzzOutcome
where
    N: ModelNode,
    F: Fn(&Scenario) -> G,
    G: FnMut(usize) -> N,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut instants_checked = 0u64;
    for iter in 0..iterations {
        let sc = random_scenario(&mut rng, iter);
        let mut factory = mk(&sc);
        let mut model = Model::new(&sc, &mut factory);
        let mut oracle = Oracle::new(sc.algo.n);
        let mut decider = DelayDecider::random(rng.next_u64(), sc.algo.model.t);
        let mut instants = 0u64;
        model.run(sc.horizon, &mut decider, |m, _| {
            instants += 1;
            oracle.check(m)
        });
        instants_checked += instants;
        if oracle.violation().is_some() {
            let delays = match decider {
                DelayDecider::Random { record, .. } => record,
                _ => unreachable!("fuzz runs use the random decider"),
            };
            let (trace, message) = shrink(&sc, delays, &mk);
            return FuzzOutcome {
                iterations: iter + 1,
                instants_checked,
                violation: Some((trace, message)),
            };
        }
    }
    FuzzOutcome {
        iterations,
        instants_checked,
        violation: None,
    }
}

/// One randomized scenario: path topology at `n ∈ {2, 3}`, continuous
/// rates in `[1 − ρ, 1 + ρ]`, optional single-edge churn and a
/// crash/restart pair, horizon in `[2, 6]`.
fn random_scenario(rng: &mut StdRng, iter: usize) -> Scenario {
    let model = ModelParams::new(0.05, 1.0, 2.0);
    let n = rng.gen_range(2..=3usize);
    let algo = AlgoParams::with_minimal_b0(model, n, 0.5);
    let rates: Vec<f64> = (0..n)
        .map(|_| rng.gen_range(1.0 - model.rho..=1.0 + model.rho))
        .collect();
    let path: Vec<Edge> = (0..n - 1)
        .map(|i| Edge::new(node(i), node(i + 1)))
        .collect();
    let horizon = rng.gen_range(2.0..6.0);

    let mut topology = Vec::new();
    if rng.gen_bool(0.5) {
        // Drop and later restore one path edge inside the horizon.
        let edge = path[rng.gen_range(0..path.len())];
        let t_remove = rng.gen_range(0.2..horizon * 0.5);
        let t_add = rng.gen_range(t_remove + 0.1..horizon * 0.9);
        topology.push(TopologyEvent::remove_at(t_remove, edge));
        topology.push(TopologyEvent::add_at(t_add, edge));
    }
    let mut faults = Vec::new();
    if rng.gen_bool(0.3) {
        let victim = node(rng.gen_range(0..n));
        let t_crash = rng.gen_range(0.2..horizon * 0.5);
        let t_restart = rng.gen_range(t_crash + 0.1..horizon * 0.9);
        faults.push(FaultEvent::crash(t_crash, victim));
        faults.push(FaultEvent::restart(t_restart, victim));
    }

    Scenario {
        name: format!("fuzz-{iter}"),
        algo,
        rates,
        initial_edges: path,
        topology,
        faults,
        delay_choices: vec![model.t],
        horizon,
    }
}

/// Scripted re-run returning the violation (if still present).
fn rerun<N, F, G>(sc: &Scenario, delays: &[f64], mk: &F) -> Option<Violation>
where
    N: ModelNode,
    F: Fn(&Scenario) -> G,
    G: FnMut(usize) -> N,
{
    let mut factory = mk(sc);
    let mut model = Model::new(sc, &mut factory);
    let mut oracle = Oracle::new(sc.algo.n);
    let mut decider = DelayDecider::scripted(delays.to_vec(), sc.algo.model.t);
    model.run(sc.horizon, &mut decider, |m, _| oracle.check(m));
    oracle.violation().cloned()
}

/// Greedy shrinking (see module docs); returns the minimized trace and
/// its violation message.
fn shrink<N, F, G>(sc: &Scenario, delays: Vec<f64>, mk: &F) -> (Trace, String)
where
    N: ModelNode,
    F: Fn(&Scenario) -> G,
    G: FnMut(usize) -> N,
{
    let mut sc = sc.clone();
    let mut delays = delays;
    let violation = rerun(&sc, &delays, mk)
        .expect("a random-decider violation must reproduce under its own recorded delays");

    // 1. Truncate the horizon at the violating instant.
    {
        let mut candidate = sc.clone();
        candidate.horizon = violation.time.max(f64::MIN_POSITIVE);
        if rerun(&candidate, &delays, mk).is_some() {
            sc = candidate;
        }
    }
    // 2. Drop fault events one at a time (repeat until no drop helps).
    prune_events(&mut sc, &delays, mk, |sc| &mut sc.faults);
    // 3. Drop topology events one at a time.
    prune_events(&mut sc, &delays, mk, |sc| &mut sc.topology);
    // 4. Snap each delay to 0, else to T.
    let t = sc.algo.model.t;
    for i in 0..delays.len() {
        for snapped in [0.0, t] {
            if delays[i] == snapped {
                continue;
            }
            let saved = delays[i];
            delays[i] = snapped;
            if rerun(&sc, &delays, mk).is_some() {
                break;
            }
            delays[i] = saved;
        }
    }

    let message = rerun(&sc, &delays, mk)
        .expect("shrinking preserves the violation")
        .to_string();
    let mut factory = mk(&sc);
    let mut model = Model::new(&sc, &mut factory);
    let mut oracle = Oracle::new(sc.algo.n);
    let mut decider = DelayDecider::scripted(delays, sc.algo.model.t);
    let mut states = Vec::new();
    model.run(sc.horizon, &mut decider, |m, _| {
        oracle.check(m);
        states.push(m.snapshot());
        true
    });
    (
        Trace::build(&sc, model.sends(), states, Some(message.clone())),
        message,
    )
}

/// Removes every event (selected by `field`) whose removal preserves the
/// violation.
fn prune_events<N, F, G, S, E>(sc: &mut Scenario, delays: &[f64], mk: &F, field: S)
where
    N: ModelNode,
    F: Fn(&Scenario) -> G,
    G: FnMut(usize) -> N,
    S: Fn(&mut Scenario) -> &mut Vec<E>,
    E: Clone,
{
    let mut i = 0;
    while i < field(sc).len() {
        let mut candidate = sc.clone();
        field(&mut candidate).remove(i);
        if rerun(&candidate, delays, mk).is_some() {
            *sc = candidate;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutant::{smoke_scenario, MutantNode, Mutation};

    #[test]
    fn healthy_fuzz_batch_is_clean() {
        let outcome = fuzz(0xfeed, 6);
        assert_eq!(outcome.iterations, 6);
        assert!(outcome.instants_checked > 0);
        assert!(
            outcome.violation.is_none(),
            "{}",
            outcome.violation.unwrap().1
        );
    }

    #[test]
    fn fuzzer_catches_and_shrinks_a_mutant() {
        // Drive randomized delays through the Lmax-overwrite mutant on its
        // smoke scenario; the violation must surface and shrink to a
        // schedule of snapped delays with a truncated horizon.
        let sc = smoke_scenario(Mutation::LmaxOverwrite);
        let mut factory = |_| MutantNode::new(sc.algo, Mutation::LmaxOverwrite);
        let mut model = Model::new(&sc, &mut factory);
        let mut oracle = Oracle::new(sc.algo.n);
        let mut decider = DelayDecider::random(7, sc.algo.model.t);
        model.run(sc.horizon, &mut decider, |m, _| oracle.check(m));
        assert!(oracle.violation().is_some(), "mutant must trip the oracle");
        let delays = match decider {
            DelayDecider::Random { record, .. } => record,
            _ => unreachable!(),
        };
        let mk = |sc: &Scenario| {
            let algo = sc.algo;
            move |_| MutantNode::new(algo, Mutation::LmaxOverwrite)
        };
        let delays_before = delays.clone();
        let (trace, message) = shrink(&sc, delays, &mk);
        assert!(message.contains("Property 6.3"), "{message}");
        assert!(trace.horizon <= sc.horizon);
        // Greedy snapping keeps a drawn delay only when neither endpoint
        // preserves the violation — every delay is an endpoint or one of
        // the original draws, and at least one must have snapped.
        let t = sc.algo.model.t;
        assert!(trace
            .delays
            .iter()
            .all(|d| d.delay == 0.0 || d.delay == t || delays_before.contains(&d.delay)));
        assert!(
            trace.delays.iter().any(|d| d.delay == 0.0 || d.delay == t),
            "no delay snapped at all: {:?}",
            trace.delays
        );
        assert_eq!(trace.violation.as_deref(), Some(message.as_str()));
    }
}
