//! Executable model checks for Algorithm 2.
//!
//! This crate turns the paper's two per-state correctness obligations —
//! **Property 6.3** (`L_u(t) ≤ Lmax_u(t)`: no node's logical clock
//! overtakes its own max estimate) and the **Definition 6.1** blocked
//! predicate (a node is blocked iff `Lmax_u > L_u` and some
//! `Γ`-neighbor's estimate sits more than its budget below `L_u`) — into
//! machine-checked invariants over *every reachable state* of a bounded
//! configuration, and wires the results back into the real engine:
//!
//! * [`model`] — a serial, decision-instrumented mirror of the engine's
//!   exact event semantics (same `(time, class, seq)` total order, same
//!   effect merge order, same timer/discovery/FIFO/epoch rules), where
//!   every live-edge message delay is an enumerable choice.
//! * [`oracle`] — the invariant checks, evaluated at every instant of
//!   every run. The blocked predicate is recomputed from the node's
//!   observable `(estimate, budget)` caps through
//!   [`gcs_core::predicate`], the same pure functions the production
//!   automaton calls — so implementation and specification can only
//!   drift apart if the check fails.
//! * [`explore`](mod@explore) — bounded exhaustive DFS over all delay
//!   interleavings
//!   (within `[0, T]`, quantized) composed with scheduled churn and
//!   crash/restart faults at `n = 2..4`, with canonical state hashing to
//!   prune converged branches.
//! * [`fuzz`](mod@fuzz) — randomized long schedules through the same
//!   oracle, with greedy counterexample shrinking.
//! * [`itf`] — ITF-style JSON export of every violation (and every
//!   healthy trace on request); no serde, hand-rolled writer + parser.
//! * [`replay`] — [`replay::TraceReplaySource`], a
//!   single source implementing the engine's `TopologySource` /
//!   `DriftSource` / `FaultSource` contracts, plus scripted delays, so an
//!   exported trace re-executes through `SimBuilder` bit-identically to
//!   the model at any thread count.
//! * [`mutant`] — intentionally broken Algorithm 2 variants proving the
//!   oracle actually rejects (the CI mutation smoke test fails closed).
//!
//! The `model_check` binary (`cargo run --release -p gcs-mc --bin
//! model_check`) is the CI entry point: explorer suites at `n = 2..4`,
//! the mutation smoke test, replay round-trips at 1 and 8 threads, and a
//! bounded fuzz batch.

#![warn(missing_docs)]

pub mod explore;
pub mod fuzz;
pub mod itf;
pub mod model;
pub mod mutant;
pub mod oracle;
pub mod replay;

pub use explore::{explore, Report};
pub use fuzz::{fuzz, FuzzOutcome};
pub use itf::Trace;
pub use model::{DelayDecider, InstantState, Model, ModelNode, NodeProbe, Scenario};
pub use oracle::{Oracle, Violation};
pub use replay::{replay_trace, TraceReplaySource};
