//! The invariant oracle: the paper's per-state obligations, evaluated at
//! every instant of every explored or fuzzed run.
//!
//! Three checks run per node per instant:
//!
//! 1. **Property 6.3** — `L_u(t) ≤ Lmax_u(t)`. The max estimate is
//!    maintained by raising it to every incoming `Lmax` and advancing it
//!    at the hardware rate, and the logical clock never jumps past it;
//!    the check asserts that composition really is an upper bound.
//! 2. **Definition 6.1 agreement** — the automaton's own `is_blocked`
//!    report must equal the predicate recomputed from its observable
//!    `(estimate, budget)` caps via [`gcs_core::predicate::is_blocked`].
//!    Since the production handlers call the same pure functions, a
//!    disagreement means the implementation's blocked/advance wiring
//!    diverged from the specification (exactly what the seeded mutants
//!    simulate).
//! 3. **Monotonicity** — `L_u` never decreases between instants, except
//!    across a restart of `u` (state loss resets the clock; the floor
//!    resets with it).
//!
//! Checks use exact comparisons except Property 6.3, which allows a
//! `1e-9` slack: `Lmax` and `L` advance through distinct but
//! mathematically equal floating-point expressions, and the paper's claim
//! is about real arithmetic.

use crate::model::{Model, ModelNode};
use gcs_net::NodeId;

/// Absolute slack for Property 6.3 (see module docs).
pub const P63_SLACK: f64 = 1e-9;

/// One invariant failure at one node at one instant.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Real time of the offending instant.
    pub time: f64,
    /// The offending node.
    pub node: NodeId,
    /// Which invariant failed, with the observed values.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t={} node={}: {}",
            self.time,
            self.node.index(),
            self.message
        )
    }
}

/// Stateful invariant checker for one run (tracks per-node monotonicity
/// floors across instants).
#[derive(Clone, Debug)]
pub struct Oracle {
    floors: Vec<f64>,
    restarts_seen: Vec<u64>,
    violation: Option<Violation>,
}

impl Oracle {
    /// A fresh oracle for an `n`-node run.
    pub fn new(n: usize) -> Self {
        Oracle {
            floors: vec![f64::NEG_INFINITY; n],
            restarts_seen: vec![0; n],
            violation: None,
        }
    }

    /// The first violation observed, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }

    /// Checks every node at the model's current instant. Returns `true`
    /// while all invariants hold (the explorer wires this straight into
    /// the run callback: a violation stops the run).
    pub fn check<N: ModelNode>(&mut self, model: &Model<N>) -> bool {
        if self.violation.is_some() {
            return false;
        }
        let t = model.now().seconds();
        for i in 0..self.floors.len() {
            let u = NodeId::from_index(i);
            if model.is_crashed(u) {
                continue;
            }
            let probe = model.probe(u);

            // Property 6.3: L_u ≤ Lmax_u.
            if probe.logical > probe.max_estimate + P63_SLACK {
                self.violation = Some(Violation {
                    time: t,
                    node: u,
                    message: format!(
                        "Property 6.3 violated: L_u = {} > Lmax_u = {}",
                        probe.logical, probe.max_estimate
                    ),
                });
                return false;
            }

            // Definition 6.1: the node's own report must agree with the
            // predicate recomputed from its observable caps.
            let spec = gcs_core::predicate::is_blocked(
                probe.logical,
                probe.max_estimate,
                probe.caps.iter().copied(),
            );
            if probe.blocked != spec {
                self.violation = Some(Violation {
                    time: t,
                    node: u,
                    message: format!(
                        "Definition 6.1 disagreement: node reports blocked = {}, \
                         predicate over caps {:?} (L_u = {}, Lmax_u = {}) says {}",
                        probe.blocked, probe.caps, probe.logical, probe.max_estimate, spec
                    ),
                });
                return false;
            }

            // Monotonicity, floor reset across restarts of u.
            let restarts = model.restarts_of(u);
            if restarts != self.restarts_seen[i] {
                self.restarts_seen[i] = restarts;
                self.floors[i] = f64::NEG_INFINITY;
            }
            if probe.logical < self.floors[i] {
                self.violation = Some(Violation {
                    time: t,
                    node: u,
                    message: format!(
                        "logical clock regressed: L_u = {} < earlier {}",
                        probe.logical, self.floors[i]
                    ),
                });
                return false;
            }
            self.floors[i] = probe.logical;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DelayDecider, Scenario};
    use gcs_core::{AlgoParams, GradientNode};
    use gcs_net::{node, Edge};
    use gcs_sim::ModelParams;

    #[test]
    fn healthy_run_passes_all_instants() {
        let model = ModelParams::new(0.05, 1.0, 2.0);
        let sc = Scenario {
            name: "oracle-healthy".into(),
            algo: AlgoParams::with_minimal_b0(model, 2, 0.5),
            rates: vec![1.05, 0.95],
            initial_edges: vec![Edge::new(node(0), node(1))],
            topology: Vec::new(),
            faults: Vec::new(),
            delay_choices: vec![0.0, 1.0],
            horizon: 3.0,
        };
        sc.validate();
        let mut m = Model::new(&sc, |_| GradientNode::new(sc.algo));
        let mut oracle = Oracle::new(2);
        let mut decider = DelayDecider::trail(vec![1, 1, 0, 1, 0]);
        m.run(sc.horizon, &mut decider, |m, _| oracle.check(m));
        assert!(oracle.violation().is_none(), "{:?}", oracle.violation());
    }
}
