//! The executable model: a serial, decision-instrumented mirror of the
//! engine's event semantics.
//!
//! [`Model`] re-implements exactly the state machine that
//! `gcs_sim::Simulator` executes — the same event total order
//! `(time, class, seq)`, the same canonical effect merge order
//! `(trigger seq, emission index)`, the same timer-generation, discovery-
//! version, FIFO-horizon, edge-epoch and crash/restart rules — but
//!
//! * runs strictly serially over a handful of nodes,
//! * treats every live-edge message delay as an explicit **decision
//!   point** resolved by a [`DelayDecider`] (the engine draws it from a
//!   [`gcs_sim::DelayStrategy`]), and
//! * exposes a canonical [`encode`](Model::encode) of its complete state,
//!   which is what makes bounded exhaustive exploration
//!   ([`mod@crate::explore`]) possible.
//!
//! Bit-identity with the engine is not aspirational: every `f64` the
//! model produces goes through the *same* code the engine calls —
//! [`HardwareClock::read`]/[`HardwareClock::fire_time`] for clocks, the
//! automaton's own handlers for protocol state, [`Time`]/[`Duration`]
//! arithmetic for event times — so replaying a recorded decision sequence
//! through the real engine ([`crate::replay`]) reproduces the model's
//! trace exactly, at every thread count.

use gcs_clocks::{Duration, HardwareClock, Time};
use gcs_core::GradientNode;
use gcs_net::schedule::TopologyEventKind;
use gcs_net::{Edge, NodeId, TopologyEvent};
use gcs_sim::{
    Action, Automaton, Context, FaultEvent, FaultKind, LinkChange, LinkChangeKind, Message,
    TimerKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One bounded-model-checking configuration: the closed world the
/// explorer enumerates decision interleavings in.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display name (also the exported trace name).
    pub name: String,
    /// Algorithm parameters (carry the model constants `ρ, T, D`).
    pub algo: gcs_core::AlgoParams,
    /// Per-node constant hardware rates, each within `[1−ρ, 1+ρ]`.
    pub rates: Vec<f64>,
    /// Initial edge set `E₀`, sorted ascending.
    pub initial_edges: Vec<Edge>,
    /// Scheduled churn, sorted by `(time, edge)`, all times `> 0`.
    pub topology: Vec<TopologyEvent>,
    /// Scheduled crash/restart faults, sorted by time, all times `> 0`.
    pub faults: Vec<FaultEvent>,
    /// The quantized delay alternatives offered at every live-edge send
    /// (each within `[0, T]`); their count is the branching factor.
    pub delay_choices: Vec<f64>,
    /// Real-time horizon: events after it stay unexplored.
    pub horizon: f64,
}

impl Scenario {
    /// Validates the bounds the model relies on. Called by the explorer
    /// and the fuzzer before any run.
    pub fn validate(&self) {
        let n = self.algo.n;
        let m = &self.algo.model;
        assert_eq!(self.rates.len(), n, "one rate per node");
        for &r in &self.rates {
            assert!(
                (1.0 - m.rho..=1.0 + m.rho).contains(&r),
                "rate {r} outside [1−ρ, 1+ρ]"
            );
        }
        assert!(
            self.initial_edges.windows(2).all(|w| w[0] < w[1]),
            "initial edges must be sorted and distinct"
        );
        for e in &self.initial_edges {
            assert!(e.hi().index() < n, "edge endpoint out of range");
        }
        assert!(
            self.topology
                .windows(2)
                .all(|w| (w[0].time, w[0].edge) <= (w[1].time, w[1].edge)),
            "topology events must be sorted by (time, edge)"
        );
        assert!(
            self.faults.windows(2).all(|w| w[0].time <= w[1].time),
            "fault events must be sorted by time"
        );
        for f in &self.faults {
            assert!(f.time > Time::ZERO, "faults occur after time 0");
            assert!(
                matches!(f.kind, FaultKind::Crash { .. } | FaultKind::Restart { .. }),
                "the model supports crash/restart faults only"
            );
        }
        assert!(!self.delay_choices.is_empty(), "need at least one delay");
        for &d in &self.delay_choices {
            assert!((0.0..=m.t).contains(&d), "delay {d} outside [0, T]");
        }
        assert!(
            self.horizon.is_finite() && self.horizon > 0.0,
            "horizon must be positive"
        );
    }
}

/// How the model resolves the delay of one live-edge send — the only
/// nondeterminism the explorer enumerates.
#[derive(Debug)]
pub enum DelayDecider {
    /// Exhaustive-exploration mode: follow a forced prefix of choice
    /// indices into [`Scenario::delay_choices`], pick index 0 beyond it,
    /// and record `(arity, chosen)` for every decision so the explorer
    /// can schedule the untaken branches.
    Trail {
        /// Forced choice prefix.
        forced: Vec<usize>,
        /// Decisions made so far: `(arity, chosen index)` per decision.
        record: Vec<(usize, usize)>,
    },
    /// Fuzz mode: draw a uniform delay in `[0, T]` from a seeded stream,
    /// recording every draw for shrinking and replay.
    Random {
        /// The fuzz stream.
        rng: StdRng,
        /// Delay bound `T`.
        t: f64,
        /// Every delay drawn, in global send order.
        record: Vec<f64>,
    },
    /// Replay mode: feed back a recorded delay list (shrunken or not);
    /// past its end, fall back to `fallback` (the worst-case `T`).
    Scripted {
        /// The recorded delays, in global send order.
        delays: Vec<f64>,
        /// Next index to serve.
        pos: usize,
        /// Delay served once `delays` is exhausted.
        fallback: f64,
    },
}

impl DelayDecider {
    /// An exploration decider over `forced` choice indices.
    pub fn trail(forced: Vec<usize>) -> Self {
        DelayDecider::Trail {
            forced,
            record: Vec::new(),
        }
    }

    /// A fuzz decider drawing uniformly from `[0, t]` under `seed`.
    pub fn random(seed: u64, t: f64) -> Self {
        DelayDecider::Random {
            rng: StdRng::seed_from_u64(seed),
            t,
            record: Vec::new(),
        }
    }

    /// A replay decider over a recorded delay list.
    pub fn scripted(delays: Vec<f64>, fallback: f64) -> Self {
        DelayDecider::Scripted {
            delays,
            pos: 0,
            fallback,
        }
    }

    /// Number of decisions resolved so far.
    pub fn decisions(&self) -> usize {
        match self {
            DelayDecider::Trail { record, .. } => record.len(),
            DelayDecider::Random { record, .. } => record.len(),
            DelayDecider::Scripted { pos, .. } => *pos,
        }
    }

    fn next_delay(&mut self, choices: &[f64]) -> f64 {
        match self {
            DelayDecider::Trail { forced, record } => {
                let pos = record.len();
                let chosen = forced.get(pos).copied().unwrap_or(0);
                debug_assert!(chosen < choices.len(), "forced choice out of range");
                record.push((choices.len(), chosen));
                choices[chosen]
            }
            DelayDecider::Random { rng, t, record } => {
                let d = rng.gen_range(0.0..=*t);
                record.push(d);
                d
            }
            DelayDecider::Scripted {
                delays,
                pos,
                fallback,
            } => {
                let d = delays.get(*pos).copied().unwrap_or(*fallback);
                *pos += 1;
                d
            }
        }
    }
}

/// An automaton the model checker can run: cloneable (one fresh instance
/// per exploration run), probe-able (for the invariant oracle), and
/// exactly encodable (for the seen-state set).
pub trait ModelNode: Automaton + Clone {
    /// The oracle's view of this node at hardware reading `hw`.
    fn probe(&self, hw: f64) -> NodeProbe;

    /// Appends an exact encoding of the node's complete dynamic state
    /// (stable across paths: two nodes behaving identically forever must
    /// encode identically, and vice versa).
    fn encode(&self, out: &mut Vec<u64>);
}

/// Everything the invariant oracle reads from one node.
#[derive(Clone, Debug)]
pub struct NodeProbe {
    /// `L_u` at the probed reading.
    pub logical: f64,
    /// `Lmax_u` at the probed reading.
    pub max_estimate: f64,
    /// The node's *own* report of the Definition 6.1 blocked predicate.
    pub blocked: bool,
    /// The neighbor caps `(L^v_u, B^v_u)` in ascending node-id order —
    /// the tuples the specification-side predicate recomputation consumes.
    pub caps: Vec<(f64, f64)>,
}

impl ModelNode for GradientNode {
    fn probe(&self, hw: f64) -> NodeProbe {
        NodeProbe {
            logical: self.logical_clock(hw),
            max_estimate: self.max_estimate(hw),
            blocked: self.is_blocked(hw),
            caps: self.neighbor_caps(hw).collect(),
        }
    }

    fn encode(&self, out: &mut Vec<u64>) {
        // ClockVar state is an offset from the hardware clock; probing at
        // hw = 0 returns exactly that offset (`offset + 0.0 == offset`).
        out.push(self.logical_clock(0.0).to_bits());
        out.push(self.max_estimate(0.0).to_bits());
        out.push(self.gamma().count() as u64);
        for v in self.gamma() {
            let st = self.neighbor_state(v).expect("gamma key");
            out.push(v.index() as u64);
            out.push(st.joined_hw.to_bits());
            out.push(st.estimate.offset().to_bits());
        }
        out.push(self.upsilon().count() as u64);
        for v in self.upsilon() {
            out.push(v.index() as u64);
        }
    }
}

/// Mirror of the engine's event payloads (the model keeps its own copy so
/// the engine's internals stay private to `gcs_sim`).
#[derive(Clone, Copy, Debug)]
enum Payload {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: Message,
        epoch: u64,
    },
    Alarm {
        node: NodeId,
        kind: TimerKind,
        generation: u64,
    },
    Topology {
        kind: LinkChangeKind,
        edge: Edge,
        version: u64,
    },
    Discover {
        node: NodeId,
        change: LinkChange,
        version: u64,
    },
    Fault {
        kind: FaultKind,
    },
}

impl Payload {
    /// The engine's class ranks: topology changes apply before faults,
    /// faults before protocol events, within one instant.
    fn class(&self) -> u8 {
        match self {
            Payload::Topology { .. } => 0,
            Payload::Fault { .. } => 1,
            _ => 2,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct QueuedEv {
    time: Time,
    seq: u64,
    payload: Payload,
}

impl QueuedEv {
    fn key(&self) -> (Time, u8, u64) {
        (self.time, self.payload.class(), self.seq)
    }
}

/// The model's event queue: same total order as the engine's wheel —
/// `(time, class, seq)` with `seq` assigned at push.
#[derive(Clone, Debug, Default)]
struct ModelQueue {
    events: Vec<QueuedEv>,
    next_seq: u64,
}

impl ModelQueue {
    fn push(&mut self, time: Time, payload: Payload) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(QueuedEv { time, seq, payload });
    }

    fn peek_time(&self) -> Option<Time> {
        self.events.iter().map(|e| e.time).min()
    }

    /// Removes and returns every event at the earliest pending time, in
    /// `(class, seq)` order — the engine's `pop_instant`. Events pushed
    /// afterwards at the same time form the next round, exactly as the
    /// wheel's larger sequence numbers do.
    fn pop_instant(&mut self) -> Option<(Time, Vec<QueuedEv>)> {
        let t = self.peek_time()?;
        let mut round: Vec<QueuedEv> = Vec::new();
        self.events.retain(|e| {
            if e.time == t {
                round.push(*e);
                false
            } else {
                true
            }
        });
        round.sort_unstable_by_key(|e| e.key());
        Some((t, round))
    }
}

/// Mirror of the engine's canonical per-edge state (`EdgeStore` entry).
#[derive(Clone, Copy, Debug, Default)]
struct EdgeMirror {
    live: bool,
    epoch: u64,
    versions: u64,
    last_add_version: u64,
    last_remove_version: u64,
}

/// Mirror of the engine's per-directed-pair node-local state.
#[derive(Clone, Copy, Debug)]
struct PeerMirror {
    discovered_version: u64,
    fifo_out: Time,
}

impl Default for PeerMirror {
    fn default() -> Self {
        PeerMirror {
            discovered_version: 0,
            fifo_out: Time::ZERO,
        }
    }
}

/// A deferred effect, merged after each segment in `(seq, k)` order.
#[derive(Clone, Copy, Debug)]
struct ModelEffect {
    seq: u64,
    k: u32,
    time: Time,
    payload: Payload,
}

/// One recorded live-edge send: the replayable decision outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SendRecord {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// The chosen delay.
    pub delay: f64,
}

/// A per-instant snapshot of the observable clock values — one ITF state.
#[derive(Clone, Debug, PartialEq)]
pub struct InstantState {
    /// Real time of the snapshot.
    pub time: f64,
    /// `L_u` for every node, in id order.
    pub logical: Vec<f64>,
    /// `Lmax_u` for every node, in id order.
    pub lmax: Vec<f64>,
}

/// The serial model interpreter over one [`Scenario`].
#[derive(Clone, Debug)]
pub struct Model<N: ModelNode> {
    algo: gcs_core::AlgoParams,
    clocks: Vec<HardwareClock>,
    nodes: Vec<N>,
    timers: Vec<BTreeMap<TimerKind, u64>>,
    peers: Vec<BTreeMap<NodeId, PeerMirror>>,
    edges: BTreeMap<Edge, EdgeMirror>,
    crashed: Vec<NodeId>,
    restart_count: Vec<u64>,
    queue: ModelQueue,
    now: Time,
    topology: Vec<TopologyEvent>,
    topo_cursor: usize,
    faults: Vec<FaultEvent>,
    fault_cursor: usize,
    delay_choices: Vec<f64>,
    sends: Vec<SendRecord>,
    /// Scratch stream handed to [`Context`]; Algorithm 2 never draws, and
    /// the engine's scratch stream is equally unobservable.
    scratch_rng: StdRng,
}

impl<N: ModelNode> Model<N> {
    /// Builds the time-0 state, mirroring `SimBuilder::build_with`:
    /// initial edges are live at epoch 1 / version 1 with both endpoint
    /// discoveries queued at time 0, then every node's `on_start` runs in
    /// id order with its effects merged per node.
    pub fn new(sc: &Scenario, mut make: impl FnMut(usize) -> N) -> Self {
        let n = sc.algo.n;
        let mut model = Model {
            algo: sc.algo,
            clocks: sc
                .rates
                .iter()
                .map(|&r| HardwareClock::constant(r, sc.algo.model.rho))
                .collect(),
            nodes: (0..n).map(&mut make).collect(),
            timers: vec![BTreeMap::new(); n],
            peers: vec![BTreeMap::new(); n],
            edges: BTreeMap::new(),
            crashed: Vec::new(),
            restart_count: vec![0; n],
            queue: ModelQueue::default(),
            now: Time::ZERO,
            topology: sc.topology.clone(),
            topo_cursor: 0,
            faults: sc.faults.clone(),
            fault_cursor: 0,
            delay_choices: sc.delay_choices.clone(),
            sends: Vec::new(),
            scratch_rng: StdRng::seed_from_u64(0),
        };
        for &e in &sc.initial_edges {
            let entry = model.edges.entry(e).or_default();
            entry.live = true;
            entry.epoch = 1;
            entry.versions = 1;
            entry.last_add_version = 1;
            for w in [e.lo(), e.hi()] {
                model.queue.push(
                    Time::ZERO,
                    Payload::Discover {
                        node: w,
                        change: LinkChange {
                            kind: LinkChangeKind::Added,
                            edge: e,
                        },
                        version: 1,
                    },
                );
            }
        }
        // `on_start` per node in id order, effects merged per node — the
        // engine's build loop.
        let mut decider = DelayDecider::scripted(Vec::new(), sc.algo.model.t);
        for i in 0..n {
            let mut effects = Vec::new();
            model.run_handler(
                NodeId::from_index(i),
                0,
                &mut decider,
                &mut effects,
                |a, c| a.on_start(c),
            );
            model.merge_effects(effects);
        }
        debug_assert_eq!(decider.decisions(), 0, "on_start must not send");
        model
    }

    /// Current real time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The algorithm parameters this model runs under.
    pub fn algo(&self) -> &gcs_core::AlgoParams {
        &self.algo
    }

    /// Every recorded live-edge send so far, in global order.
    pub fn sends(&self) -> &[SendRecord] {
        &self.sends
    }

    /// Times a node has been restarted (the oracle resets its logical-
    /// clock monotonicity floor across restarts).
    pub fn restarts_of(&self, u: NodeId) -> u64 {
        self.restart_count[u.index()]
    }

    /// Whether `u` is currently crashed.
    pub fn is_crashed(&self, u: NodeId) -> bool {
        self.crashed.binary_search(&u).is_ok()
    }

    /// The oracle probe of node `u` at the current time.
    pub fn probe(&self, u: NodeId) -> NodeProbe {
        self.nodes[u.index()].probe(self.read_hw(u, self.now))
    }

    /// The observable clock snapshot at the current time.
    pub fn snapshot(&self) -> InstantState {
        let n = self.nodes.len();
        let mut logical = Vec::with_capacity(n);
        let mut lmax = Vec::with_capacity(n);
        for i in 0..n {
            let u = NodeId::from_index(i);
            let hw = self.read_hw(u, self.now);
            logical.push(self.nodes[i].logical_clock(hw));
            lmax.push(self.nodes[i].max_estimate(hw));
        }
        InstantState {
            time: self.now.seconds(),
            logical,
            lmax,
        }
    }

    /// Runs the model to `horizon`, resolving send delays through
    /// `decider` and calling `on_instant` after every completed instant
    /// (with `now()` at that instant, and the number of decisions made so
    /// far as the second argument) plus once at the final processed
    /// instant. Returning `false` from the callback stops the run early
    /// (the explorer's seen-state pruning). Afterwards `now()` is the
    /// horizon (unless stopped early).
    ///
    /// This mirrors `Simulator::run_until(horizon)` exactly: sources are
    /// pumped before every pop with a `T` lookahead, instants split into
    /// topology barriers, fault barriers and one protocol segment, and
    /// all segment effects merge in `(trigger seq, emission idx)` order.
    pub fn run(
        &mut self,
        horizon: f64,
        decider: &mut DelayDecider,
        mut on_instant: impl FnMut(&Model<N>, usize) -> bool,
    ) -> RunStatus {
        let until = Time::new(horizon);
        assert!(until >= self.now, "cannot run backwards");
        loop {
            self.pump_topology();
            self.pump_faults();
            let Some(t) = self.queue.peek_time() else {
                break;
            };
            if t > until {
                break;
            }
            if t > self.now && !on_instant(self, decider.decisions()) {
                return RunStatus::Stopped;
            }
            let (t, round) = self.queue.pop_instant().expect("peek said non-empty");
            self.now = t;
            self.run_round(&round, decider);
        }
        let go_on = on_instant(self, decider.decisions());
        self.now = until;
        if go_on {
            RunStatus::Completed
        } else {
            RunStatus::Stopped
        }
    }

    /// Streams due topology into the queue — the engine's
    /// `pump_topology`: pull while the source's next event is at or
    /// before the queue's next pop (or the queue is empty), with a `T`
    /// lookahead per pull.
    fn pump_topology(&mut self) {
        loop {
            let Some(ts) = self.topology.get(self.topo_cursor).map(|e| e.time) else {
                return;
            };
            if let Some(next) = self.queue.peek_time() {
                if ts > next {
                    return;
                }
            }
            let until = ts + Duration::new(self.algo.model.t);
            while let Some(&ev) = self
                .topology
                .get(self.topo_cursor)
                .filter(|e| e.time <= until)
            {
                self.topo_cursor += 1;
                self.schedule_topology(ev);
            }
        }
    }

    fn pump_faults(&mut self) {
        loop {
            let Some(ts) = self.faults.get(self.fault_cursor).map(|e| e.time) else {
                return;
            };
            if let Some(next) = self.queue.peek_time() {
                if ts > next {
                    return;
                }
            }
            let until = ts + Duration::new(self.algo.model.t);
            while let Some(&ev) = self
                .faults
                .get(self.fault_cursor)
                .filter(|e| e.time <= until)
            {
                self.fault_cursor += 1;
                self.queue.push(ev.time, Payload::Fault { kind: ev.kind });
            }
        }
    }

    /// Assigns the pulled event its per-edge change version and queues it
    /// plus both endpoint discoveries at `time + D` (the model fixes the
    /// engine's `DiscoveryDelay::Constant(D)`, which draws nothing).
    fn schedule_topology(&mut self, ev: TopologyEvent) {
        let entry = self.edges.entry(ev.edge).or_default();
        entry.versions += 1;
        let version = entry.versions;
        let kind = match ev.kind {
            TopologyEventKind::Add => LinkChangeKind::Added,
            TopologyEventKind::Remove => LinkChangeKind::Removed,
        };
        self.queue.push(
            ev.time,
            Payload::Topology {
                kind,
                edge: ev.edge,
                version,
            },
        );
        let lat = self.discovery_latency();
        for w in [ev.edge.lo(), ev.edge.hi()] {
            self.queue.push(
                ev.time + Duration::new(lat),
                Payload::Discover {
                    node: w,
                    change: LinkChange {
                        kind,
                        edge: ev.edge,
                    },
                    version,
                },
            );
        }
    }

    /// `DiscoveryDelay::Constant(D)` as the engine evaluates it.
    fn discovery_latency(&self) -> f64 {
        let d = self.algo.model.d;
        d.clamp(f64::MIN_POSITIVE, d)
    }

    /// One instant: topology barriers, then fault barriers, then a single
    /// protocol segment — the order the `(time, class, seq)` sort already
    /// put the round in.
    fn run_round(&mut self, round: &[QueuedEv], decider: &mut DelayDecider) {
        let mut i = 0;
        while i < round.len() {
            match round[i].payload {
                Payload::Topology {
                    kind,
                    edge,
                    version,
                } => {
                    self.apply_topology(kind, edge, version);
                    i += 1;
                }
                Payload::Fault { kind } => {
                    self.apply_fault(kind, round[i].seq, decider);
                    i += 1;
                }
                _ => break,
            }
        }
        if i == round.len() {
            return;
        }
        let mut effects = Vec::new();
        for ev in &round[i..] {
            debug_assert_eq!(ev.payload.class(), 2, "barriers sort first");
            self.run_event(ev, decider, &mut effects);
        }
        self.merge_effects(effects);
    }

    fn apply_topology(&mut self, kind: LinkChangeKind, edge: Edge, version: u64) {
        let entry = self.edges.entry(edge).or_default();
        match kind {
            LinkChangeKind::Added => {
                entry.epoch += 1;
                entry.live = true;
                entry.last_add_version = version;
            }
            LinkChangeKind::Removed => {
                entry.last_remove_version = version;
                entry.live = false;
            }
        }
    }

    /// The engine's fault barrier for the crash/restart family.
    fn apply_fault(&mut self, kind: FaultKind, seq: u64, decider: &mut DelayDecider) {
        match kind {
            FaultKind::Crash { node } => {
                if let Err(i) = self.crashed.binary_search(&node) {
                    self.crashed.insert(i, node);
                    // All armed timers go stale; entries stay so post-
                    // restart arms never alias in-flight generations.
                    for gen in self.timers[node.index()].values_mut() {
                        *gen = gen.wrapping_add(1);
                    }
                }
            }
            FaultKind::Restart { node } => {
                if let Ok(i) = self.crashed.binary_search(&node) {
                    self.crashed.remove(i);
                }
                self.restart_count[node.index()] += 1;
                let fresh = self.nodes[node.index()]
                    .try_reboot()
                    .expect("model automata support reboot");
                self.nodes[node.index()] = fresh;
                for gen in self.timers[node.index()].values_mut() {
                    *gen = gen.wrapping_add(1);
                }
                for peer in self.peers[node.index()].values_mut() {
                    peer.discovered_version = 0;
                }
                // `on_start` at the restart instant, merged under the
                // fault's sequence number.
                let mut effects = Vec::new();
                self.run_handler(node, seq, decider, &mut effects, |a, c| a.on_start(c));
                self.merge_effects(effects);
                // Rediscover currently-live edges within D, under each
                // edge's last applied add version.
                let lat = self.discovery_latency();
                let neighbors: Vec<NodeId> = (0..self.nodes.len())
                    .map(NodeId::from_index)
                    .filter(|&v| {
                        v != node && self.edges.get(&Edge::new(node, v)).is_some_and(|e| e.live)
                    })
                    .collect();
                for v in neighbors {
                    let edge = Edge::new(node, v);
                    let version = self
                        .edges
                        .get(&edge)
                        .map(|e| e.last_add_version)
                        .unwrap_or(1);
                    self.queue.push(
                        self.now + Duration::new(lat),
                        Payload::Discover {
                            node,
                            change: LinkChange {
                                kind: LinkChangeKind::Added,
                                edge,
                            },
                            version,
                        },
                    );
                }
            }
            _ => unreachable!("Scenario::validate admits crash/restart only"),
        }
    }

    /// Hardware reading of `u` at `t`: `H(0) = 0`, else the node's clock —
    /// the engine's stateless-plane path bit for bit.
    fn read_hw(&self, u: NodeId, t: Time) -> f64 {
        if t == Time::ZERO {
            return 0.0;
        }
        self.clocks[u.index()].read(t)
    }

    /// One non-barrier event — the engine's `dispatch::run_event`.
    fn run_event(
        &mut self,
        ev: &QueuedEv,
        decider: &mut DelayDecider,
        effects: &mut Vec<ModelEffect>,
    ) {
        let owner = match ev.payload {
            Payload::Deliver { to, .. } => to,
            Payload::Alarm { node, .. } => node,
            Payload::Discover { node, .. } => node,
            _ => unreachable!("barriers applied above"),
        };
        // A crashed node executes nothing: deliveries to it vanish, its
        // alarms and discoveries are suppressed; watermarks are left
        // untouched.
        if self.is_crashed(owner) {
            return;
        }
        match ev.payload {
            Payload::Deliver {
                from,
                to,
                msg,
                epoch,
            } => {
                let edge = Edge::new(from, to);
                let state = self.edges.get(&edge);
                if state.map(|e| e.live && e.epoch == epoch).unwrap_or(false) {
                    self.run_handler(owner, ev.seq, decider, effects, |a, c| {
                        a.on_receive(c, from, msg)
                    });
                } else {
                    // Dropped in flight: the sender learns of the removal
                    // now (≤ send + T < send + D).
                    let version = state.map(|e| e.last_remove_version).unwrap_or(0);
                    effects.push(ModelEffect {
                        seq: ev.seq,
                        k: 0,
                        time: self.now,
                        payload: Payload::Discover {
                            node: from,
                            change: LinkChange {
                                kind: LinkChangeKind::Removed,
                                edge,
                            },
                            version,
                        },
                    });
                }
            }
            Payload::Alarm {
                kind, generation, ..
            } => {
                let timers = &mut self.timers[owner.index()];
                if timers.get(&kind).copied() != Some(generation) {
                    return; // stale
                }
                timers.remove(&kind); // disarm: a fired alarm consumes its entry
                self.run_handler(owner, ev.seq, decider, effects, |a, c| a.on_alarm(c, kind));
            }
            Payload::Discover {
                change, version, ..
            } => {
                let other = change.edge.other(owner);
                let peer = self.peers[owner.index()].entry(other).or_default();
                if version <= peer.discovered_version {
                    return; // stale
                }
                peer.discovered_version = version;
                self.run_handler(owner, ev.seq, decider, effects, |a, c| {
                    a.on_discover(c, change)
                });
            }
            _ => unreachable!(),
        }
    }

    /// Runs one handler and converts its actions into effects — the
    /// engine's `dispatch::run_handler`, with the delay draw replaced by
    /// the decider.
    fn run_handler(
        &mut self,
        u: NodeId,
        seq: u64,
        decider: &mut DelayDecider,
        effects: &mut Vec<ModelEffect>,
        f: impl FnOnce(&mut N, &mut Context<'_>),
    ) {
        let hw = self.read_hw(u, self.now);
        let mut actions: Vec<Action> = Vec::new();
        {
            let mut ctx = Context::new(u, self.now, hw, &mut actions, &mut self.scratch_rng);
            f(&mut self.nodes[u.index()], &mut ctx);
        }
        let mut k = 0u32;
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    let edge = Edge::new(u, to);
                    let state = self.edges.get(&edge);
                    if state.map(|e| e.live).unwrap_or(false) {
                        let epoch = state.expect("live edge has an entry").epoch;
                        // THE decision point: the adversary picks the
                        // delay within [0, T] (the engine's strategy
                        // clamp applied for exactness).
                        let d = decider
                            .next_delay(&self.delay_choices)
                            .clamp(0.0, self.algo.model.t);
                        let mut deliver_at = self.now + Duration::new(d);
                        let peer = self.peers[u.index()].entry(to).or_default();
                        deliver_at = deliver_at.max(peer.fifo_out);
                        peer.fifo_out = deliver_at;
                        self.sends.push(SendRecord {
                            from: u,
                            to,
                            delay: d,
                        });
                        effects.push(ModelEffect {
                            seq,
                            k,
                            time: deliver_at,
                            payload: Payload::Deliver {
                                from: u,
                                to,
                                msg,
                                epoch,
                            },
                        });
                    } else {
                        // No edge: not delivered, sender discovers within D.
                        let version = state.map(|e| e.last_remove_version).unwrap_or(0);
                        effects.push(ModelEffect {
                            seq,
                            k,
                            time: self.now + Duration::new(self.discovery_latency()),
                            payload: Payload::Discover {
                                node: u,
                                change: LinkChange {
                                    kind: LinkChangeKind::Removed,
                                    edge,
                                },
                                version,
                            },
                        });
                    }
                    k += 1;
                }
                Action::SetTimer { delta, kind } => {
                    let generation = self.timers[u.index()]
                        .entry(kind)
                        .and_modify(|g| *g = g.wrapping_add(1))
                        .or_insert(1);
                    let generation = *generation;
                    let fire = if self.now == Time::ZERO {
                        self.clocks[u.index()].fire_time(Time::ZERO, delta)
                    } else {
                        self.clocks[u.index()].fire_time(self.now, delta)
                    };
                    effects.push(ModelEffect {
                        seq,
                        k,
                        time: fire,
                        payload: Payload::Alarm {
                            node: u,
                            kind,
                            generation,
                        },
                    });
                    k += 1;
                }
                Action::CancelTimer { kind } => {
                    // cancel: bump if armed, entry stays present.
                    if let Some(gen) = self.timers[u.index()].get_mut(&kind) {
                        *gen = gen.wrapping_add(1);
                    }
                }
            }
        }
    }

    /// Canonical effect merge: sort by `(trigger seq, emission idx)`,
    /// push in that order so new events get the engine's tie-break order.
    fn merge_effects(&mut self, mut effects: Vec<ModelEffect>) {
        effects.sort_unstable_by_key(|e| (e.seq, e.k));
        for e in effects {
            self.queue.push(e.time, e.payload);
        }
    }

    /// Appends an exact canonical encoding of the complete model state.
    ///
    /// Queue sequence numbers are remapped to their pop-order rank:
    /// absolute values grow with history length, but only their *order*
    /// is observable (they never enter any `f64` computation), so two
    /// states agreeing on everything but the absolute values behave
    /// identically forever. Everything else — times, offsets, epochs,
    /// versions, generations — is encoded raw.
    pub fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.now.seconds().to_bits());
        for (i, node) in self.nodes.iter().enumerate() {
            let u = NodeId::from_index(i);
            out.push(u64::from(self.is_crashed(u)));
            node.encode(out);
            let timers = &self.timers[i];
            out.push(timers.len() as u64);
            for (&kind, &gen) in timers {
                out.push(timer_code(kind));
                out.push(gen);
            }
            // Engine peer slots materialize lazily with default content,
            // so default entries encode as absent.
            let live_peers: Vec<_> = self.peers[i]
                .iter()
                .filter(|(_, p)| p.discovered_version != 0 || p.fifo_out != Time::ZERO)
                .collect();
            out.push(live_peers.len() as u64);
            for (&v, p) in live_peers {
                out.push(v.index() as u64);
                out.push(p.discovered_version);
                out.push(p.fifo_out.seconds().to_bits());
            }
        }
        out.push(self.edges.len() as u64);
        for (e, st) in &self.edges {
            out.push(e.lo().index() as u64);
            out.push(e.hi().index() as u64);
            out.push(u64::from(st.live));
            out.push(st.epoch);
            out.push(st.versions);
            out.push(st.last_add_version);
            out.push(st.last_remove_version);
        }
        out.push(self.topo_cursor as u64);
        out.push(self.fault_cursor as u64);
        let mut pending = self.queue.events.clone();
        pending.sort_unstable_by_key(|e| e.key());
        out.push(pending.len() as u64);
        for ev in &pending {
            out.push(ev.time.seconds().to_bits());
            match ev.payload {
                Payload::Deliver {
                    from,
                    to,
                    msg,
                    epoch,
                } => {
                    out.push(0);
                    out.push(from.index() as u64);
                    out.push(to.index() as u64);
                    out.push(msg.logical.to_bits());
                    out.push(msg.max_estimate.to_bits());
                    out.push(epoch);
                }
                Payload::Alarm {
                    node,
                    kind,
                    generation,
                } => {
                    out.push(1);
                    out.push(node.index() as u64);
                    out.push(timer_code(kind));
                    out.push(generation);
                }
                Payload::Topology {
                    kind,
                    edge,
                    version,
                } => {
                    out.push(2);
                    out.push(u64::from(kind == LinkChangeKind::Added));
                    out.push(edge.lo().index() as u64);
                    out.push(edge.hi().index() as u64);
                    out.push(version);
                }
                Payload::Discover {
                    node,
                    change,
                    version,
                } => {
                    out.push(3);
                    out.push(node.index() as u64);
                    out.push(u64::from(change.kind == LinkChangeKind::Added));
                    out.push(change.edge.lo().index() as u64);
                    out.push(change.edge.hi().index() as u64);
                    out.push(version);
                }
                Payload::Fault { kind } => {
                    out.push(4);
                    match kind {
                        FaultKind::Crash { node } => {
                            out.push(0);
                            out.push(node.index() as u64);
                        }
                        FaultKind::Restart { node } => {
                            out.push(1);
                            out.push(node.index() as u64);
                        }
                        _ => unreachable!("validated scenario"),
                    }
                }
            }
        }
    }
}

/// How a [`Model::run`] ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Ran to the horizon.
    Completed,
    /// The instant callback requested an early stop (seen state or
    /// violation).
    Stopped,
}

fn timer_code(kind: TimerKind) -> u64 {
    match kind {
        TimerKind::Tick => 0,
        TimerKind::Lost(v) => 1 + v.index() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::AlgoParams;
    use gcs_sim::ModelParams;

    fn tiny_scenario() -> Scenario {
        let model = ModelParams::new(0.05, 1.0, 2.0);
        Scenario {
            name: "tiny".into(),
            algo: AlgoParams::with_minimal_b0(model, 2, 0.5),
            rates: vec![1.05, 0.95],
            initial_edges: vec![Edge::new(NodeId::from_index(0), NodeId::from_index(1))],
            topology: Vec::new(),
            faults: Vec::new(),
            delay_choices: vec![0.0, 1.0],
            horizon: 2.0,
        }
    }

    #[test]
    fn model_runs_to_horizon_and_snapshots() {
        let sc = tiny_scenario();
        sc.validate();
        let mut m = Model::new(&sc, |_| GradientNode::new(sc.algo));
        let mut decider = DelayDecider::trail(Vec::new());
        let mut instants = 0;
        let status = m.run(sc.horizon, &mut decider, |_, _| {
            instants += 1;
            true
        });
        assert_eq!(status, RunStatus::Completed);
        assert!(instants > 0, "ticks and discoveries produce instants");
        assert!(decider.decisions() > 0, "live-edge sends are decisions");
        let snap = m.snapshot();
        assert_eq!(snap.time, sc.horizon);
        // The fast node's logical clock tracks its hardware clock.
        assert!(snap.logical[0] > 0.0 && snap.lmax[0] >= snap.logical[0]);
    }

    #[test]
    fn encode_is_deterministic_across_identical_runs() {
        let sc = tiny_scenario();
        let run = |choices: Vec<usize>| {
            let mut m = Model::new(&sc, |_| GradientNode::new(sc.algo));
            let mut d = DelayDecider::trail(choices);
            m.run(sc.horizon, &mut d, |_, _| true);
            let mut enc = Vec::new();
            m.encode(&mut enc);
            enc
        };
        assert_eq!(run(vec![0, 1]), run(vec![0, 1]));
        assert_ne!(
            run(vec![0, 0]),
            run(vec![1, 1]),
            "different delay choices reach different states"
        );
    }

    #[test]
    fn scripted_decider_replays_a_recorded_run_exactly() {
        let sc = tiny_scenario();
        let mut m1 = Model::new(&sc, |_| GradientNode::new(sc.algo));
        let mut d1 = DelayDecider::trail(vec![1, 0, 1]);
        m1.run(sc.horizon, &mut d1, |_, _| true);
        let delays: Vec<f64> = m1.sends().iter().map(|s| s.delay).collect();

        let mut m2 = Model::new(&sc, |_| GradientNode::new(sc.algo));
        let mut d2 = DelayDecider::scripted(delays, sc.algo.model.t);
        m2.run(sc.horizon, &mut d2, |_, _| true);
        assert_eq!(m1.sends(), m2.sends());
        let (mut e1, mut e2) = (Vec::new(), Vec::new());
        m1.encode(&mut e1);
        m2.encode(&mut e2);
        assert_eq!(e1, e2);
    }
}
