//! Counterexample replay: executing an ITF trace through the real engine.
//!
//! [`TraceReplaySource`] packages a trace's scheduled nondeterminism as
//! one object implementing all three of the engine's source-plane
//! contracts — [`TopologySource`] (the recorded initial edges + churn),
//! [`FaultSource`] (the recorded crash/restart schedule), and
//! [`DriftSource`] (the recorded constant per-node rates, served
//! statelessly through [`ScheduleDrift`], the exact plane
//! `SimBuilder::clocks` installs). One value is cloned into each of the
//! `SimBuilder::topology/drift/faults` slots; the recorded per-send
//! delays go in as a [`DelayStrategy::Scripted`] script and discovery is
//! pinned at the model's `DiscoveryDelay::Constant(D)`.
//!
//! With every nondeterministic input pinned, the engine's trace is a
//! pure function of the trace file — and because the model interpreter
//! mirrors the engine's event order exactly, [`replay_trace`] demands
//! **bit identity**: at every recorded instant, every node's `L_u` and
//! `Lmax_u` must match the recorded snapshot to the last bit, at any
//! thread count. A mismatch fails with the first diverging node/instant.
//!
//! Replay reconstructs `AlgoParams` via `AlgoParams::new` (aging budget
//! policy) — the configuration of the engine-facing Algorithm 2. Traces
//! exported from baseline-policy mutants are inspection artifacts, not
//! replay inputs.

use crate::itf::Trace;
use gcs_clocks::{DriftCursor, DriftSource, HardwareClock, ScheduleDrift, Time};
use gcs_core::{AlgoParams, GradientNode};
use gcs_net::{Edge, NodeId, TopologyEvent, TopologySource};
use gcs_sim::{
    DelayScript, DelayStrategy, DiscoveryDelay, FaultEvent, FaultSource, ModelParams, SimBuilder,
};
use std::sync::Arc;

/// A trace's nondeterminism as a single engine source plane (see module
/// docs). Clone one instance into each `SimBuilder` slot.
#[derive(Clone, Debug)]
pub struct TraceReplaySource {
    n: usize,
    initial: Vec<Edge>,
    topology: Vec<TopologyEvent>,
    topo_cursor: usize,
    faults: Vec<FaultEvent>,
    fault_cursor: usize,
    drift: Arc<ScheduleDrift>,
}

impl TraceReplaySource {
    /// Builds the source plane for `trace`.
    pub fn new(trace: &Trace) -> Self {
        let initial: Vec<Edge> = trace
            .initial_edges
            .iter()
            .map(|&(lo, hi)| {
                Edge::new(
                    NodeId::from_index(lo as usize),
                    NodeId::from_index(hi as usize),
                )
            })
            .collect();
        let topology: Vec<TopologyEvent> = trace
            .topology
            .iter()
            .map(|ev| {
                let edge = Edge::new(
                    NodeId::from_index(ev.lo as usize),
                    NodeId::from_index(ev.hi as usize),
                );
                if ev.add {
                    TopologyEvent::add_at(ev.time, edge)
                } else {
                    TopologyEvent::remove_at(ev.time, edge)
                }
            })
            .collect();
        let faults: Vec<FaultEvent> = trace
            .faults
            .iter()
            .map(|ev| {
                let node = NodeId::from_index(ev.node as usize);
                if ev.restart {
                    FaultEvent::restart(ev.time, node)
                } else {
                    FaultEvent::crash(ev.time, node)
                }
            })
            .collect();
        let clocks: Vec<HardwareClock> = trace
            .rates
            .iter()
            .map(|&r| HardwareClock::constant(r, trace.rho))
            .collect();
        TraceReplaySource {
            n: trace.n,
            initial,
            topology,
            topo_cursor: 0,
            faults,
            fault_cursor: 0,
            drift: Arc::new(ScheduleDrift::new(clocks)),
        }
    }
}

impl TopologySource for TraceReplaySource {
    fn n(&self) -> usize {
        self.n
    }

    fn initial_edges(&mut self) -> Vec<Edge> {
        self.initial.clone()
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.topology.get(self.topo_cursor).map(|ev| ev.time)
    }

    fn pull_until(&mut self, until: Time, buf: &mut Vec<TopologyEvent>) {
        while let Some(ev) = self.topology.get(self.topo_cursor) {
            if ev.time > until {
                break;
            }
            buf.push(*ev);
            self.topo_cursor += 1;
        }
    }
}

impl FaultSource for TraceReplaySource {
    fn peek_time(&mut self) -> Option<Time> {
        self.faults.get(self.fault_cursor).map(|ev| ev.time)
    }

    fn pull_until(&mut self, until: Time, buf: &mut Vec<FaultEvent>) {
        while let Some(ev) = self.faults.get(self.fault_cursor) {
            if ev.time > until {
                break;
            }
            buf.push(*ev);
            self.fault_cursor += 1;
        }
    }
}

impl DriftSource for TraceReplaySource {
    fn rho(&self) -> f64 {
        self.drift.rho()
    }

    fn init(&self, index: usize) -> DriftCursor {
        self.drift.init(index)
    }

    fn next_segment(&self, index: usize, cursor: &mut DriftCursor) {
        self.drift.next_segment(index, cursor)
    }

    fn stateless(&self) -> bool {
        true
    }

    fn read_at(&self, index: usize, t: Time) -> f64 {
        self.drift.read_at(index, t)
    }

    fn fire_at(&self, index: usize, now: Time, delta: f64) -> Time {
        self.drift.fire_at(index, now, delta)
    }
}

/// Replays `trace` through the real engine at `threads` workers and
/// checks bit identity against the recorded snapshots.
///
/// Returns `Err` with the first divergence (instant, node, recorded vs
/// replayed bits) or any structural problem (unsorted snapshot times,
/// leftover scripted delays).
pub fn replay_trace(trace: &Trace, threads: usize) -> Result<(), String> {
    let model = ModelParams::new(trace.rho, trace.t, trace.d);
    let algo = AlgoParams::new(model, trace.n, trace.delta_h, trace.b0);
    let source = TraceReplaySource::new(trace);
    let script = DelayScript::new();
    for d in &trace.delays {
        script.push(
            NodeId::from_index(d.from as usize),
            NodeId::from_index(d.to as usize),
            d.delay,
        );
    }
    let mut sim = SimBuilder::topology(model, source.clone())
        .drift(source.clone())
        .faults(source)
        .delay(DelayStrategy::Scripted(script.clone()))
        .discovery(DiscoveryDelay::Constant(model.d))
        .seed(0)
        .threads(threads)
        .build_with(|_| GradientNode::new(algo));

    let mut last = f64::NEG_INFINITY;
    for (idx, state) in trace.states.iter().enumerate() {
        if state.time <= last && idx > 0 {
            return Err(format!(
                "snapshot times must strictly increase (state {idx} at {})",
                state.time
            ));
        }
        last = state.time;
        sim.run_until(Time::new(state.time));
        for u in 0..trace.n {
            let node = NodeId::from_index(u);
            let logical = sim.logical(node);
            let lmax = sim.max_estimate_of(node);
            if logical.to_bits() != state.logical[u].to_bits() {
                return Err(format!(
                    "divergence at state {idx} (t = {}), node {u}: \
                     L_u replayed {logical:?} vs recorded {:?}",
                    state.time, state.logical[u]
                ));
            }
            if lmax.to_bits() != state.lmax[u].to_bits() {
                return Err(format!(
                    "divergence at state {idx} (t = {}), node {u}: \
                     Lmax_u replayed {lmax:?} vs recorded {:?}",
                    state.time, state.lmax[u]
                ));
            }
        }
    }
    let leftover = script.remaining();
    if leftover != 0 {
        return Err(format!(
            "{leftover} scripted delays were never consumed — the engine \
             made fewer sends than the model recorded"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{suite, trace_of_trail};

    #[test]
    fn healthy_static_trace_replays_bit_identical_at_1_and_2_threads() {
        let suite = suite(2);
        let sc = &suite[0];
        let (trace, oracle) = trace_of_trail(sc, |_| GradientNode::new(sc.algo), vec![1, 0, 1]);
        assert!(oracle.violation().is_none());
        assert!(!trace.states.is_empty() && !trace.delays.is_empty());
        replay_trace(&trace, 1).expect("single-thread replay");
        replay_trace(&trace, 2).expect("two-thread replay");
    }

    #[test]
    fn churn_and_fault_traces_replay_bit_identical() {
        for sc in suite(3)
            .iter()
            .filter(|sc| !sc.topology.is_empty() || !sc.faults.is_empty())
        {
            let (trace, oracle) = trace_of_trail(sc, |_| GradientNode::new(sc.algo), vec![1]);
            assert!(oracle.violation().is_none(), "{}", sc.name);
            replay_trace(&trace, 1).unwrap_or_else(|e| panic!("{}: {e}", sc.name));
        }
    }

    #[test]
    fn replay_round_trips_through_json() {
        let suite = suite(2);
        let sc = &suite[0];
        let (trace, _) = trace_of_trail(sc, |_| GradientNode::new(sc.algo), Vec::new());
        let parsed = Trace::from_json(&trace.to_json()).expect("parse");
        assert_eq!(parsed, trace);
        replay_trace(&parsed, 1).expect("replay of parsed trace");
    }

    #[test]
    fn corrupted_snapshot_is_rejected() {
        let suite = suite(2);
        let sc = &suite[0];
        let (mut trace, _) = trace_of_trail(sc, |_| GradientNode::new(sc.algo), Vec::new());
        let mid = trace.states.len() / 2;
        trace.states[mid].logical[0] += 1e-12;
        let err = replay_trace(&trace, 1).expect_err("tampered trace must fail");
        assert!(err.contains("divergence"), "{err}");
    }
}
