//! Bounded exhaustive exploration: every interleaving of message-delay
//! choices, composed with the scenario's scheduled churn and faults.
//!
//! # How the state space is enumerated
//!
//! The only nondeterminism in a validated [`Scenario`] is the delay of
//! each live-edge send, drawn from the scenario's quantized
//! `delay_choices ⊆ [0, T]` (drift is fixed per scenario — the suites
//! quantize it by enumerating *rate vectors* as separate scenarios, per
//! the `[1−ρ, 1+ρ]` bound; churn and crash/restart are scheduled, so
//! their interleaving with protocol events is fully determined by the
//! engine's `(time, class, seq)` order once delays are fixed). A run is
//! therefore a path in a decision tree whose branching factor is
//! `delay_choices.len()`.
//!
//! The explorer walks that tree by **trail re-execution**: a trail is a
//! forced prefix of choice indices; the model runs from the initial state
//! following the trail and defaulting to choice 0 past it, recording
//! every decision. After each run, the untaken alternatives at every
//! decision *at or past the trail's end* are pushed as new trails
//! (alternatives before the trail's end were already scheduled when a
//! shorter prefix of this path first ran). Re-execution trades CPU for
//! memory: no cloned model states are kept, only trails.
//!
//! # Seen-state pruning
//!
//! After each instant the model's canonical encoding ([`Model::encode`])
//! is hashed twice with independent 64-bit FNV-1a variants and inserted
//! into a seen set. A run may stop early at a previously-seen state —
//! different delay paths frequently converge (e.g. once every in-flight
//! message is delivered and the queue shape matches) — but **only once
//! it has made at least one free decision** (`decisions ≥ forced.len()`):
//! up to that point the run is merely replaying a prefix whose
//! alternatives still need scheduling from *this* trail's extensions.
//! Pruning at a seen state is sound because the encoding captures the
//! complete dynamic state (nodes, timers, peers, edges, cursors, pending
//! queue): identical encodings have identical futures given identical
//! remaining decisions, and those futures were enumerated from the first
//! visit.
//!
//! Every instant of every run is also fed to the [`Oracle`]; the first
//! violation aborts the search and is packaged as an ITF trace.

use crate::itf::Trace;
use crate::model::{DelayDecider, Model, ModelNode, Scenario};
use crate::oracle::Oracle;
use std::collections::HashSet;

/// Result of exploring one scenario.
#[derive(Clone, Debug)]
pub struct Report {
    /// The scenario's name.
    pub scenario: String,
    /// Complete runs (trails) executed.
    pub runs: usize,
    /// Distinct canonical states visited.
    pub states: usize,
    /// Maximum number of decisions in any single run.
    pub max_depth: usize,
    /// The first invariant violation, if any, with its replayable trace.
    pub violation: Option<(Trace, String)>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Second-stream basis: FNV-1a over a different offset keeps the two
/// 64-bit digests independent enough for a 128-bit effective key.
const FNV_OFFSET_ALT: u64 = 0x6c62_272e_07bb_0142;

fn fnv1a(basis: u64, words: &[u64]) -> u64 {
    let mut h = basis;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Exhaustively explores `sc`, building each run's nodes with `make`.
///
/// `max_runs` is a safety valve against mis-sized scenarios: the search
/// panics if the trail stack would exceed it, rather than burning CI
/// minutes silently (a correctly-sized suite stays well under it).
pub fn explore<N: ModelNode>(
    sc: &Scenario,
    mut make: impl FnMut(usize) -> N,
    max_runs: usize,
) -> Report {
    sc.validate();
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut report = Report {
        scenario: sc.name.clone(),
        runs: 0,
        states: 0,
        max_depth: 0,
        violation: None,
    };
    let mut scratch = Vec::new();
    while let Some(forced) = stack.pop() {
        report.runs += 1;
        assert!(
            report.runs <= max_runs,
            "scenario {} exceeded {} runs — shrink its horizon or choices",
            sc.name,
            max_runs
        );
        let forced_len = forced.len();
        let mut model = Model::new(sc, &mut make);
        let mut decider = DelayDecider::trail(forced);
        let mut oracle = Oracle::new(sc.algo.n);
        model.run(sc.horizon, &mut decider, |m, decisions| {
            if !oracle.check(m) {
                return false;
            }
            scratch.clear();
            m.encode(&mut scratch);
            let key = (fnv1a(FNV_OFFSET, &scratch), fnv1a(FNV_OFFSET_ALT, &scratch));
            let fresh = seen.insert(key);
            // Prune only once this run has decided something the trail
            // did not force — see module docs for the soundness argument.
            fresh || decisions < forced_len
        });
        let DelayDecider::Trail { forced, record } = decider else {
            unreachable!("explore uses trail deciders");
        };
        report.max_depth = report.max_depth.max(record.len());
        if let Some(v) = oracle.violation() {
            // Re-run the violating path once more, collecting snapshots
            // for the exported trace (keeps the hot loop snapshot-free).
            let choices: Vec<usize> = record.iter().map(|&(_, c)| c).collect();
            let (trace, _) = trace_of_trail(sc, &mut make, choices);
            report.violation = Some((trace, v.to_string()));
            return report;
        }
        // Schedule the untaken siblings of every free decision.
        for (j, &(arity, chosen)) in record.iter().enumerate().skip(forced.len()) {
            debug_assert_eq!(chosen, 0, "free decisions default to choice 0");
            for alt in 1..arity {
                let mut trail = Vec::with_capacity(j + 1);
                trail.extend(record[..j].iter().map(|&(_, c)| c));
                trail.push(alt);
                stack.push(trail);
            }
        }
        report.states = seen.len();
    }
    report.states = seen.len();
    report
}

/// Replays one trail to completion (no pruning) and exports its trace —
/// used to produce *healthy* traces for the replay round-trip tests.
pub fn trace_of_trail<N: ModelNode>(
    sc: &Scenario,
    mut make: impl FnMut(usize) -> N,
    trail: Vec<usize>,
) -> (Trace, Oracle) {
    sc.validate();
    let mut model = Model::new(sc, &mut make);
    let mut decider = DelayDecider::trail(trail);
    let mut oracle = Oracle::new(sc.algo.n);
    let mut states = Vec::new();
    model.run(sc.horizon, &mut decider, |m, _| {
        oracle.check(m);
        states.push(m.snapshot());
        true
    });
    let violation = oracle.violation().map(|v| v.to_string());
    (Trace::build(sc, model.sends(), states, violation), oracle)
}

/// The CI scenario suite at a given `n ∈ 2..=4`.
///
/// Each suite fixes `ρ = 0.05, T = 1, D = 2, ΔH = 0.5` and enumerates
/// rate vectors over the drift quantization `{1−ρ, 1, 1+ρ}` (the
/// boundary-and-midpoint choices an adversary controls under the paper's
/// model), crossed with churn and crash/restart variants within the
/// scenario bounds. Horizons are sized so the full `n = 3` suite
/// explores in well under the 60 s CI budget.
pub fn suite(n: usize) -> Vec<Scenario> {
    use gcs_core::AlgoParams;
    use gcs_net::{node, Edge, TopologyEvent};
    use gcs_sim::{FaultEvent, ModelParams};

    let model = ModelParams::new(0.05, 1.0, 2.0);
    let algo = AlgoParams::with_minimal_b0(model, n, 0.5);
    let lo = 1.0 - model.rho;
    let hi = 1.0 + model.rho;
    let delays = vec![0.0, model.t];

    let path: Vec<Edge> = (0..n - 1)
        .map(|i| Edge::new(node(i), node(i + 1)))
        .collect();
    // Horizon per n: sized so every scenario's decision count (≈ one per
    // live-edge send) keeps 2^decisions re-executions inside the CI
    // budget, while still covering the initial discovery exchange plus at
    // least one full tick round per node.
    let horizon = match n {
        2 => 1.6,
        3 => 1.3,
        _ => 1.0,
    };
    let mut scenarios = Vec::new();
    let mut push = |name: String,
                    rates: Vec<f64>,
                    initial: Vec<Edge>,
                    topology: Vec<TopologyEvent>,
                    faults: Vec<FaultEvent>,
                    horizon: f64| {
        scenarios.push(Scenario {
            name,
            algo,
            rates,
            initial_edges: initial,
            topology,
            faults,
            delay_choices: delays.clone(),
            horizon,
        });
    };

    // Rate quantization: every vector over {1−ρ, 1, 1+ρ} at n = 2; the
    // adversarially extreme vectors (max pairwise drift plus midpoint
    // mixes) at n = 3, 4 to keep the product bounded.
    let rate_vectors: Vec<Vec<f64>> = match n {
        2 => {
            let q = [lo, 1.0, hi];
            let mut v = Vec::new();
            for &a in &q {
                for &b in &q {
                    v.push(vec![a, b]);
                }
            }
            v
        }
        3 => vec![
            vec![hi, 1.0, lo],
            vec![lo, hi, lo],
            vec![hi, lo, hi],
            vec![1.0, 1.0, 1.0],
        ],
        4 => vec![vec![hi, 1.0, 1.0, lo], vec![hi, lo, hi, lo]],
        _ => panic!("suite covers n = 2..=4"),
    };

    for (i, rates) in rate_vectors.iter().enumerate() {
        push(
            format!("n{n}-static-r{i}"),
            rates.clone(),
            path.clone(),
            Vec::new(),
            Vec::new(),
            horizon,
        );
    }

    // Churn: drop then re-add the first path edge around the first tick
    // exchanges (exercises epoch mismatch drops, stale discovery
    // versions, and re-add rediscovery).
    let churn_edge = path[0];
    push(
        format!("n{n}-churn"),
        match n {
            2 => vec![hi, lo],
            3 => vec![hi, 1.0, lo],
            _ => vec![hi, 1.0, 1.0, lo],
        },
        path.clone(),
        vec![
            TopologyEvent::remove_at(0.7, churn_edge),
            TopologyEvent::add_at(1.0, churn_edge),
        ],
        Vec::new(),
        horizon,
    );

    // Crash/restart of the fastest node mid-run (exercises timer
    // cancellation, state loss, restart rediscovery).
    push(
        format!("n{n}-crash-restart"),
        match n {
            2 => vec![hi, lo],
            3 => vec![hi, 1.0, lo],
            _ => vec![hi, 1.0, 1.0, lo],
        },
        path.clone(),
        Vec::new(),
        vec![
            FaultEvent::crash(0.6, node(0)),
            FaultEvent::restart(0.9, node(0)),
        ],
        horizon,
    );

    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::GradientNode;

    #[test]
    fn n2_static_scenario_explores_clean() {
        let suite = suite(2);
        let sc = &suite[0];
        let report = explore(sc, |_| GradientNode::new(sc.algo), 1_000_000);
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.runs > 1, "branching must occur");
        assert!(report.states > 0);
    }

    #[test]
    fn exploration_visits_both_alternatives_of_the_first_decision() {
        let suite = suite(2);
        let sc = &suite[0];
        // With 2 delay choices the run count is at least 1 + #free
        // decisions of the root run.
        let report = explore(sc, |_| GradientNode::new(sc.algo), 1_000_000);
        assert!(report.max_depth >= 2);
        assert!(report.runs >= report.max_depth);
    }

    #[test]
    fn mutant_is_caught_by_exploration_too() {
        use crate::mutant::{MutantNode, Mutation};
        let sc = crate::mutant::smoke_scenario(Mutation::LmaxOverwrite);
        let report = explore(
            &sc,
            |_| MutantNode::new(sc.algo, Mutation::LmaxOverwrite),
            1_000_000,
        );
        let (_, msg) = report.violation.expect("exploration must catch the mutant");
        assert!(msg.contains("Property 6.3"), "{msg}");
    }
}
