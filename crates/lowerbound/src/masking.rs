//! The Masking Lemma (Lemma 4.2), executable.
//!
//! Execution α: all hardware clocks run at rate 1; constrained edges carry
//! their prescribed delay `P(e)`, unconstrained edges carry `T` uphill
//! (away from `u`) and `0` downhill.
//!
//! Execution β: a node at flexible distance `j` has
//! `H^β(t) = t + min{ρt, T·j}` (rate `1+ρ` until `t = jT/ρ`, then 1);
//! delays are adjusted so β is indistinguishable from α. The adjusted
//! delay of a message β-sent at `tβ_s` is obtained by mapping through the
//! clock correspondence: `tα_s = H^β_x(tβ_s)`, `tα_r = tα_s + delay_α`,
//! `tβ_r = (H^β_y)⁻¹(tα_r)`.
//!
//! This module provides the mapping and [`verify_beta_legality`], which
//! checks the lemma's Part II case analysis numerically: every adjusted
//! delay lies in `[0, T]`, and constrained edges stay within
//! `[P(e)/(1+ρ), P(e)]`.

use crate::mask::DelayMask;
use gcs_net::{Edge, NodeId};
use gcs_sim::delay::{beta_hw, beta_hw_inverse};

/// The α-delay of a message from `from` across `edge`, per the lemma's
/// construction.
pub fn alpha_delay(
    edge: Edge,
    from: NodeId,
    layers: &[usize],
    mask: &DelayMask,
    big_t: f64,
    intra: f64,
) -> f64 {
    if let Some(p) = mask.delay_of(edge) {
        return p;
    }
    let to = edge.other(from);
    match layers[from.index()].cmp(&layers[to.index()]) {
        std::cmp::Ordering::Less => big_t,
        std::cmp::Ordering::Greater => 0.0,
        std::cmp::Ordering::Equal => intra,
    }
}

/// The β-delay of a message β-sent at `tb_send`, derived from the
/// indistinguishability mapping.
// The argument list mirrors the lemma's own parameterization
// (e, x, tβ_s; M = (E_C, P); ρ, T) — grouping them would obscure the
// correspondence with the paper.
#[allow(clippy::too_many_arguments)]
pub fn beta_delay(
    edge: Edge,
    from: NodeId,
    tb_send: f64,
    layers: &[usize],
    mask: &DelayMask,
    rho: f64,
    big_t: f64,
    intra: f64,
) -> f64 {
    let to = edge.other(from);
    let (jx, jy) = (layers[from.index()], layers[to.index()]);
    let da = alpha_delay(edge, from, layers, mask, big_t, intra);
    let ta_s = beta_hw(tb_send, jx, rho, big_t);
    let ta_r = ta_s + da;
    let tb_r = beta_hw_inverse(ta_r, jy, rho, big_t);
    tb_r - tb_send
}

/// One legality violation found by [`verify_beta_legality`].
#[derive(Clone, Debug, PartialEq)]
pub struct LegalityViolation {
    /// Offending edge.
    pub edge: Edge,
    /// Sending endpoint.
    pub from: NodeId,
    /// β send time.
    pub tb_send: f64,
    /// Computed β delay.
    pub delay: f64,
    /// Allowed range.
    pub range: (f64, f64),
}

/// Verifies the Part II case analysis over a grid of send times: for every
/// edge, direction and send time, the β-delay must lie in `[0, T]`; on
/// constrained edges it must lie in `[P(e)/(1+ρ), P(e)]`.
pub fn verify_beta_legality(
    edges: &[Edge],
    layers: &[usize],
    mask: &DelayMask,
    rho: f64,
    big_t: f64,
    intra: f64,
    send_times: &[f64],
) -> Vec<LegalityViolation> {
    let eps = 1e-9;
    let mut violations = Vec::new();
    for &e in edges {
        for from in [e.lo(), e.hi()] {
            let range = match mask.delay_of(e) {
                Some(p) => (p / (1.0 + rho), p),
                None => (0.0, big_t),
            };
            for &t in send_times {
                let d = beta_delay(e, from, t, layers, mask, rho, big_t, intra);
                if d < range.0 - eps || d > range.1 + eps {
                    violations.push(LegalityViolation {
                        edge: e,
                        from,
                        tb_send: t,
                        delay: d,
                        range,
                    });
                }
            }
        }
    }
    violations
}

/// The skew the Masking Lemma builds between `u` and a node at flexible
/// distance `d` by time `t > T·d·(1 + 1/ρ)`: at least `T·d/4` in one of
/// the two executions.
pub fn lemma42_skew_bound(flexible_distance: usize, big_t: f64) -> f64 {
    0.25 * big_t * flexible_distance as f64
}

/// The time after which the lemma's skew guarantee holds:
/// `T·d·(1 + 1/ρ)`.
pub fn lemma42_ready_time(flexible_distance: usize, big_t: f64, rho: f64) -> f64 {
    big_t * flexible_distance as f64 * (1.0 + 1.0 / rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::flexible_layers;
    use gcs_net::{generators, node};

    fn e(i: usize, j: usize) -> Edge {
        Edge::between(i, j)
    }

    const RHO: f64 = 0.01;
    const T: f64 = 1.0;

    #[test]
    fn post_ramp_uphill_is_zero_downhill_is_t() {
        let layers = vec![0, 1];
        let mask = DelayMask::new();
        // Ramp for layer 1 ends at t = T/ρ = 100.
        let d_up = beta_delay(e(0, 1), node(0), 500.0, &layers, &mask, RHO, T, 0.0);
        assert!(
            d_up.abs() < 1e-9,
            "uphill post-ramp should be 0, got {d_up}"
        );
        let d_down = beta_delay(e(0, 1), node(1), 500.0, &layers, &mask, RHO, T, 0.0);
        assert!(
            (d_down - T).abs() < 1e-9,
            "downhill post-ramp should be T, got {d_down}"
        );
    }

    #[test]
    fn pre_ramp_uphill_scales() {
        let layers = vec![0, 1];
        let mask = DelayMask::new();
        // At t=0 both clocks aligned; uphill delay = T/(1+ρ).
        let d = beta_delay(e(0, 1), node(0), 0.0, &layers, &mask, RHO, T, 0.0);
        assert!((d - T / (1.0 + RHO)).abs() < 1e-9);
        // Downhill at t=0: α-delay 0 maps to min(ρt, …) = 0.
        let d2 = beta_delay(e(0, 1), node(1), 0.0, &layers, &mask, RHO, T, 0.0);
        assert!(d2.abs() < 1e-9);
    }

    #[test]
    fn constrained_edge_delay_in_prescribed_band() {
        let layers = vec![0, 0];
        let mask = DelayMask::uniform([e(0, 1)], 0.8);
        for t in [0.0, 10.0, 50.0, 79.9, 80.0, 200.0] {
            let d = beta_delay(e(0, 1), node(0), t, &layers, &mask, RHO, T, 0.0);
            assert!(
                (0.8 / 1.01 - 1e-9..=0.8 + 1e-9).contains(&d),
                "t={t}: constrained delay {d} outside band"
            );
        }
    }

    #[test]
    fn legality_holds_on_masked_path() {
        // Path of 8 with a constrained prefix, dense grid of send times
        // covering all ramp phases.
        let n = 8;
        let edges = generators::path(n);
        let mask = DelayMask::uniform([e(0, 1), e(1, 2)], T);
        let layers = flexible_layers(n, edges.clone(), &mask, node(0));
        let send_times: Vec<f64> = (0..2000).map(|i| i as f64 * 0.5).collect();
        let violations = verify_beta_legality(&edges, &layers, &mask, RHO, T, 0.0, &send_times);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn legality_holds_on_two_chain_network() {
        let tc = generators::TwoChain::new(20);
        let edges = tc.edges();
        let k = 2.0;
        let mask = DelayMask::uniform(tc.e_block(k), T);
        let layers = flexible_layers(tc.n, edges.clone(), &mask, tc.u(k));
        let send_times: Vec<f64> = (0..3000).map(|i| i as f64 * 0.7).collect();
        let violations = verify_beta_legality(&edges, &layers, &mask, RHO, T, 0.0, &send_times);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn ready_time_and_bound_formulas() {
        assert_eq!(lemma42_skew_bound(8, 1.0), 2.0);
        assert!((lemma42_ready_time(8, 1.0, 0.01) - 8.0 * 101.0).abs() < 1e-9);
    }

    #[test]
    fn beta_hw_roundtrip() {
        for layer in [0usize, 1, 3, 7] {
            for t in [0.0, 5.0, 99.9, 100.0, 1000.0] {
                let h = beta_hw(t, layer, RHO, T);
                let back = beta_hw_inverse(h, layer, RHO, T);
                assert!((back - t).abs() < 1e-7, "layer={layer} t={t}");
            }
        }
    }
}
