//! Lemma 4.3: subsequence extraction with prescribed gaps.
//!
//! Given `x_1, …, x_n` with `x_1 ≤ x_n` and `|x_i − x_{i+1}| ≤ d`, and any
//! `c > d`, there is a subsequence `x_{i_1}, …, x_{i_m}` with
//!
//! 1. `m ≤ (x_n − x_1)/(c − d) + 1`, and
//! 2. every consecutive gap `x_{i_{j+1}} − x_{i_j} ∈ [c − d, c]`.
//!
//! Theorem 4.1 applies this to the logical clocks along the B-chain to
//! choose where the new edges `E_new` go: each new edge then carries skew
//! in `[I − S, I]` with `c = I` and `d = S`.

/// Returns the indices `i_1 < … < i_m` of the lemma's subsequence,
/// following the proof's inductive construction exactly.
pub fn lemma43_subsequence(xs: &[f64], c: f64, d: f64) -> Vec<usize> {
    let n = xs.len();
    assert!(n >= 2, "need at least two values");
    assert!(c > d && d >= 0.0, "need c > d >= 0 (got c={c}, d={d})");
    assert!(
        xs[0] <= xs[n - 1],
        "need x_1 <= x_n (got {} > {})",
        xs[0],
        xs[n - 1]
    );
    for w in xs.windows(2) {
        assert!(
            (w[0] - w[1]).abs() <= d + 1e-9,
            "adjacent gap {} exceeds d = {d}",
            (w[0] - w[1]).abs()
        );
    }
    let mut indices = vec![0usize];
    loop {
        let ij = *indices.last().expect("non-empty");
        // i_{j+1} := min({n} ∪ {ℓ | i_j < ℓ < n and x_ℓ − x_{i_j} >= c − d
        //                        and x_ℓ <= x_n})
        let next = (ij + 1..n - 1)
            .find(|&l| xs[l] - xs[ij] >= c - d && xs[l] <= xs[n - 1])
            .unwrap_or(n - 1);
        if next == n - 1 {
            // The sequence reaches n and stays there; m = max{j : i_j < n}.
            break;
        }
        indices.push(next);
    }
    indices
}

/// Checks the lemma's two conclusions on a produced subsequence. Returns
/// `Err` with a description on failure (used by tests and by the Theorem
/// 4.1 builder as a sanity check).
pub fn check_lemma43(xs: &[f64], c: f64, d: f64, indices: &[usize]) -> Result<(), String> {
    let n = xs.len();
    let m = indices.len();
    let bound = (xs[n - 1] - xs[0]) / (c - d) + 1.0;
    if (m as f64) > bound + 1e-9 {
        return Err(format!("m = {m} exceeds bound {bound}"));
    }
    for w in indices.windows(2) {
        let gap = xs[w[1]] - xs[w[0]];
        if !(c - d - 1e-9..=c + 1e-9).contains(&gap) {
            return Err(format!(
                "gap x[{}] - x[{}] = {gap} outside [{}, {c}]",
                w[1],
                w[0],
                c - d
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn monotone_ramp() {
        let xs: Vec<f64> = (0..11).map(|i| i as f64).collect(); // d = 1
        let idx = lemma43_subsequence(&xs, 3.0, 1.0);
        check_lemma43(&xs, 3.0, 1.0, &idx).unwrap();
        // Gaps of >= 2: indices 0, 2, 4, 6, 8 (last index 10 excluded from
        // the subsequence by the proof's max{j : i_j < n}).
        assert_eq!(idx, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn zigzag_sequence() {
        let xs = vec![0.0, 1.0, 0.5, 1.5, 1.0, 2.0, 1.5, 2.5, 2.0, 3.0];
        // d = 1 (max adjacent gap is 1, some negative).
        let idx = lemma43_subsequence(&xs, 2.5, 1.0);
        check_lemma43(&xs, 2.5, 1.0, &idx).unwrap();
    }

    #[test]
    fn flat_sequence_gives_single_index() {
        let xs = vec![5.0; 8];
        let idx = lemma43_subsequence(&xs, 1.0, 0.5);
        assert_eq!(idx, vec![0]);
        check_lemma43(&xs, 1.0, 0.5, &idx).unwrap();
    }

    #[test]
    #[should_panic(expected = "x_1 <= x_n")]
    fn decreasing_endpoints_rejected() {
        let _ = lemma43_subsequence(&[3.0, 2.0, 1.0], 2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds d")]
    fn oversized_step_rejected() {
        let _ = lemma43_subsequence(&[0.0, 5.0, 6.0], 2.0, 1.0);
    }

    proptest! {
        /// The construction satisfies the lemma's conclusions on random
        /// bounded-step sequences.
        #[test]
        fn lemma_holds_on_random_sequences(
            steps in prop::collection::vec(-1.0f64..1.0, 2..60),
            c_extra in 0.1f64..3.0,
        ) {
            let d = 1.0;
            let c = d + c_extra;
            let mut xs = vec![0.0f64];
            for s in &steps {
                xs.push(xs.last().unwrap() + s);
            }
            // Enforce x_1 <= x_n by mirroring if needed.
            if xs[0] > *xs.last().unwrap() {
                for x in xs.iter_mut() {
                    *x = -*x;
                }
            }
            let idx = lemma43_subsequence(&xs, c, d);
            prop_assert!(check_lemma43(&xs, c, d, &idx).is_ok());
            // Indices strictly increasing and within range.
            for w in idx.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            prop_assert!(*idx.last().unwrap() < xs.len());
        }
    }
}
