//! The Theorem 4.1 scenario (Figure 1).
//!
//! The network is the two-chain graph of
//! [`gcs_net::generators::TwoChain`]: `w0` and `wn` joined by
//! chain A and chain B. The delay mask constrains `E_block` — the first
//! `⌈k⌉` and last `⌈k⌉`-ish edges of chain A — to delay `T`, so the
//! designated nodes `u, v` on chain A sit at flexible distance
//! `≈ n/2 − 2(k+1)` from each other while staying within `k` *constrained*
//! hops of `w0` and `wn`.
//!
//! Running any clock synchronization algorithm under the β adversary
//! (layered rates + mapped delays, see [`crate::masking`]) drives the
//! execution into the configuration of Figure 1(a): `Ω(n)` skew between
//! `u` and `v`, and hence between `w0` and `wn`. Lemma 4.3 then picks the
//! positions of the new edges `E_new` on chain B so that each carries skew
//! in `[I − S, I]` (Figure 1(b)).

use crate::mask::{flexible_layers, DelayMask};
use crate::masking;
use crate::subsequence::{check_lemma43, lemma43_subsequence};
use gcs_clocks::{drift, HardwareClock};
use gcs_net::generators::TwoChain;
use gcs_net::{Edge, NodeId, TopologySchedule};
use gcs_sim::DelayStrategy;

/// A fully-specified Theorem 4.1 construction.
#[derive(Clone, Debug)]
pub struct Theorem41Scenario {
    /// The two-chain network.
    pub tc: TwoChain,
    /// The block parameter `k` (the paper's `k = δ·n/s̄(n)`).
    pub k: f64,
    /// The delay mask `(E_block, P ≡ T)`.
    pub mask: DelayMask,
    /// Flexible distances from `u`.
    pub layers: Vec<usize>,
    /// Drift bound ρ.
    pub rho: f64,
    /// Delay bound `T`.
    pub big_t: f64,
}

impl Theorem41Scenario {
    /// Builds the construction for `n ≥ 8` nodes with block parameter `k`.
    pub fn new(n: usize, k: f64, rho: f64, big_t: f64) -> Self {
        assert!(k >= 1.0, "block parameter k must be >= 1");
        let tc = TwoChain::new(n);
        let mask = DelayMask::uniform(tc.e_block(k), big_t);
        let layers = flexible_layers(n, tc.edges(), &mask, tc.u(k));
        Theorem41Scenario {
            tc,
            k,
            mask,
            layers,
            rho,
            big_t,
        }
    }

    /// The designated node `u = ⟨⌈k⌉, A⟩`.
    pub fn u(&self) -> NodeId {
        self.tc.u(self.k)
    }

    /// The designated node `v = ⟨⌊n/2 − k⌋, A⟩`.
    pub fn v(&self) -> NodeId {
        self.tc.v(self.k)
    }

    /// Flexible distance `dist_M(u, v)`.
    pub fn flexible_distance_uv(&self) -> usize {
        self.layers[self.v().index()]
    }

    /// The static topology schedule (before `E_new`).
    pub fn schedule(&self) -> TopologySchedule {
        TopologySchedule::static_graph(self.tc.n, self.tc.edges())
    }

    /// Hardware clocks of execution β: layer `j` runs at `1+ρ` until
    /// `jT/ρ`, rate 1 after.
    pub fn beta_clocks(&self) -> Vec<HardwareClock> {
        self.layers
            .iter()
            .map(|&j| HardwareClock::new(drift::layered_beta(j, self.rho, self.big_t), self.rho))
            .collect()
    }

    /// Hardware clocks of execution α (all rate 1).
    pub fn alpha_clocks(&self) -> Vec<HardwareClock> {
        (0..self.tc.n)
            .map(|_| HardwareClock::perfect(self.rho))
            .collect()
    }

    /// The α delay adversary: `P(e)` on `E_block`, `T` uphill, 0 downhill.
    pub fn alpha_delays(&self) -> DelayStrategy {
        DelayStrategy::Layered {
            layer: self.layers.clone(),
            constrained: self.mask.pattern().clone(),
            intra: 0.0,
        }
    }

    /// The β delay adversary: α mapped through the clock correspondence.
    pub fn beta_delays(&self) -> DelayStrategy {
        DelayStrategy::BetaLayered {
            layer: self.layers.clone(),
            constrained: self.mask.pattern().clone(),
            rho: self.rho,
            intra: 0.0,
        }
    }

    /// Real time after which Lemma 4.2's skew guarantee is in force for
    /// the pair `(u, v)`.
    pub fn ready_time(&self) -> f64 {
        masking::lemma42_ready_time(self.flexible_distance_uv(), self.big_t, self.rho)
    }

    /// The guaranteed skew `T·dist_M(u,v)/4` (in α or β).
    pub fn skew_bound(&self) -> f64 {
        masking::lemma42_skew_bound(self.flexible_distance_uv(), self.big_t)
    }

    /// Chain B's nodes in chain order (`w0 … wn`), whose clock values feed
    /// Lemma 4.3.
    pub fn b_chain(&self) -> Vec<NodeId> {
        self.tc.b_chain()
    }

    /// Places `E_new` (Figure 1(b)): given the logical clocks of the
    /// B-chain nodes at `T1` (in chain order), the per-edge skew bound `S`
    /// (the paper's `S = ξ·s̄(n)`), and the prescribed skew `I > S`,
    /// returns the new edges, each carrying skew in `[I − S, I]` at `T1`.
    ///
    /// The clock sequence may run in either direction; it is reversed
    /// internally if `x_1 > x_n`.
    pub fn place_new_edges(&self, b_clocks: &[f64], i_skew: f64, s: f64) -> Vec<Edge> {
        let chain = self.b_chain();
        assert_eq!(b_clocks.len(), chain.len());
        let (values, nodes): (Vec<f64>, Vec<NodeId>) = if b_clocks.first() <= b_clocks.last() {
            (b_clocks.to_vec(), chain)
        } else {
            (
                b_clocks.iter().rev().copied().collect(),
                chain.into_iter().rev().collect(),
            )
        };
        let idx = lemma43_subsequence(&values, i_skew, s);
        check_lemma43(&values, i_skew, s, &idx).expect("Lemma 4.3 construction failed");
        idx.windows(2)
            .map(|w| Edge::new(nodes[w[0]], nodes[w[1]]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::time::at;
    use gcs_clocks::ScheduleDrift;
    use gcs_core::{AlgoParams, GradientNode};
    use gcs_net::ScheduleSource;
    use gcs_sim::{ModelParams, SimBuilder};

    const RHO: f64 = 0.01;
    const T: f64 = 1.0;

    #[test]
    fn construction_geometry() {
        let sc = Theorem41Scenario::new(20, 2.0, RHO, T);
        assert_eq!(sc.layers[sc.u().index()], 0);
        // u and v are separated by n/2 − 2k unconstrained A-edges.
        assert_eq!(sc.flexible_distance_uv(), 6);
        // w0 and wn are at flexible distance 0 and dist(v) respectively
        // (the masked blocks are free).
        assert_eq!(sc.layers[sc.tc.w0().index()], 0);
        assert_eq!(sc.layers[sc.tc.wn().index()], sc.flexible_distance_uv());
    }

    #[test]
    fn layer_properties_hold() {
        let sc = Theorem41Scenario::new(32, 3.0, RHO, T);
        crate::mask::check_layer_properties(&sc.layers, sc.tc.edges(), &sc.mask).unwrap();
    }

    #[test]
    fn beta_delays_legal_on_scenario() {
        let sc = Theorem41Scenario::new(24, 2.0, RHO, T);
        let times: Vec<f64> = (0..3000).map(|i| i as f64 * 0.5).collect();
        let v = masking::verify_beta_legality(
            &sc.tc.edges(),
            &sc.layers,
            &sc.mask,
            RHO,
            T,
            0.0,
            &times,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    /// The headline reproduction: running the *actual* Algorithm 2 under
    /// the β adversary produces at least the skew the Masking Lemma
    /// guarantees (the α execution provably carries almost none, so the
    /// lemma's `max(α, β) ≥ T·d/4` lands on β).
    #[test]
    fn beta_execution_builds_omega_n_skew() {
        let n = 20;
        let sc = Theorem41Scenario::new(n, 2.0, RHO, T);
        let model = ModelParams::new(RHO, T, 2.0);
        let params = AlgoParams::with_minimal_b0(model, n, 0.5);
        let mut sim = SimBuilder::topology(model, ScheduleSource::new(sc.schedule()))
            .drift(ScheduleDrift::new(sc.beta_clocks()))
            .delay(sc.beta_delays())
            .build_with(|_| GradientNode::new(params));
        let t2 = sc.ready_time() + 10.0;
        sim.run_until(at(t2));
        let skew = (sim.logical(sc.u()) - sim.logical(sc.v())).abs();
        assert!(
            skew >= sc.skew_bound(),
            "β execution built only {skew}, lemma guarantees {}",
            sc.skew_bound()
        );
    }

    /// In α (all rates 1) the same algorithm keeps u and v tightly
    /// synchronized — the skew really comes from the masking adversary.
    #[test]
    fn alpha_execution_stays_tight() {
        let n = 20;
        let sc = Theorem41Scenario::new(n, 2.0, RHO, T);
        let model = ModelParams::new(RHO, T, 2.0);
        let params = AlgoParams::with_minimal_b0(model, n, 0.5);
        let mut sim = SimBuilder::topology(model, ScheduleSource::new(sc.schedule()))
            .drift(ScheduleDrift::new(sc.alpha_clocks()))
            .delay(sc.alpha_delays())
            .build_with(|_| GradientNode::new(params));
        sim.run_until(at(sc.ready_time() + 10.0));
        let skew = (sim.logical(sc.u()) - sim.logical(sc.v())).abs();
        assert!(
            skew < sc.skew_bound() / 4.0,
            "α execution unexpectedly skewed: {skew}"
        );
    }

    #[test]
    fn new_edge_placement_carries_prescribed_skew() {
        let sc = Theorem41Scenario::new(24, 2.0, RHO, T);
        // Synthetic B-chain clocks: ramp from 0 to 60 with steps <= 6.
        let chain_len = sc.b_chain().len();
        let b_clocks: Vec<f64> = (0..chain_len).map(|i| 5.0 * i as f64).collect();
        let s = 6.0;
        let i_skew = 20.0;
        let edges = sc.place_new_edges(&b_clocks, i_skew, s);
        assert!(!edges.is_empty());
        // Verify every new edge's endpoint clock difference is in
        // [I − S, I].
        let chain = sc.b_chain();
        let clock_of = |w: NodeId| {
            let pos = chain.iter().position(|&x| x == w).unwrap();
            b_clocks[pos]
        };
        for e in &edges {
            let gap = (clock_of(e.lo()) - clock_of(e.hi())).abs();
            assert!(
                gap >= i_skew - s - 1e-9 && gap <= i_skew + 1e-9,
                "edge {e:?} carries {gap}, want [{}, {i_skew}]",
                i_skew - s
            );
        }
        // |E_new| <= G/(I−S) + 1 with G = total B-chain spread.
        let spread = b_clocks.last().unwrap() - b_clocks[0];
        assert!((edges.len() as f64) <= spread / (i_skew - s) + 1.0);
    }

    #[test]
    fn place_new_edges_handles_descending_chains() {
        let sc = Theorem41Scenario::new(24, 2.0, RHO, T);
        let chain_len = sc.b_chain().len();
        let b_clocks: Vec<f64> = (0..chain_len).map(|i| 100.0 - 5.0 * i as f64).collect();
        let edges = sc.place_new_edges(&b_clocks, 20.0, 6.0);
        assert!(!edges.is_empty());
    }
}
