//! Delay masks and flexible distance (Definitions 4.1–4.3).

use gcs_net::{Edge, NodeId};
use std::collections::{BTreeMap, VecDeque};

/// A delay mask `M = (E_C, P)`: a set of constrained links with a
/// prescribed message delay for each.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DelayMask {
    constrained: BTreeMap<Edge, f64>,
}

impl DelayMask {
    /// An empty mask (no constrained links).
    pub fn new() -> Self {
        Self::default()
    }

    /// A mask constraining every given edge to delay `p` (the common case
    /// in Theorem 4.1, where `P(e) = T` on all of `E_block`).
    pub fn uniform(edges: impl IntoIterator<Item = Edge>, p: f64) -> Self {
        assert!(p >= 0.0);
        DelayMask {
            constrained: edges.into_iter().map(|e| (e, p)).collect(),
        }
    }

    /// Adds a constrained link.
    pub fn constrain(&mut self, e: Edge, p: f64) -> &mut Self {
        assert!(p >= 0.0);
        self.constrained.insert(e, p);
        self
    }

    /// The prescribed delay of `e`, if constrained.
    pub fn delay_of(&self, e: Edge) -> Option<f64> {
        self.constrained.get(&e).copied()
    }

    /// True if `e ∈ E_C`.
    pub fn is_constrained(&self, e: Edge) -> bool {
        self.constrained.contains_key(&e)
    }

    /// The constrained-edge map (for building delay strategies).
    pub fn pattern(&self) -> &BTreeMap<Edge, f64> {
        &self.constrained
    }

    /// Number of constrained links.
    pub fn len(&self) -> usize {
        self.constrained.len()
    }

    /// True if no links are constrained.
    pub fn is_empty(&self) -> bool {
        self.constrained.is_empty()
    }
}

/// Flexible distances `dist_M(u, ·)`: minimum number of *unconstrained*
/// edges on any path from `u` (Definition 4.3). Constrained edges cost 0,
/// unconstrained edges cost 1 — a 0–1 BFS.
///
/// Panics if the graph is disconnected from `u` (the constructions always
/// use connected networks).
pub fn flexible_layers(
    n: usize,
    edges: impl IntoIterator<Item = Edge>,
    mask: &DelayMask,
    u: NodeId,
) -> Vec<usize> {
    let mut adj: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); n];
    for e in edges {
        let w = usize::from(!mask.is_constrained(e));
        adj[e.lo().index()].push((e.hi(), w));
        adj[e.hi().index()].push((e.lo(), w));
    }
    let mut dist = vec![usize::MAX; n];
    let mut dq = VecDeque::new();
    dist[u.index()] = 0;
    dq.push_back(u);
    while let Some(x) = dq.pop_front() {
        let dx = dist[x.index()];
        for &(y, w) in &adj[x.index()] {
            let nd = dx + w;
            if nd < dist[y.index()] {
                dist[y.index()] = nd;
                if w == 0 {
                    dq.push_front(y);
                } else {
                    dq.push_back(y);
                }
            }
        }
    }
    assert!(
        dist.iter().all(|&d| d != usize::MAX),
        "network disconnected from {u:?}"
    );
    dist
}

/// Checks the two structural properties used in the Masking Lemma proof:
/// constrained edges connect same-layer nodes, and unconstrained edges
/// connect nodes whose layers differ by at most one. (These hold for any
/// mask by construction of the 0–1 BFS; the checker exists to document and
/// test that fact.)
pub fn check_layer_properties(
    layers: &[usize],
    edges: impl IntoIterator<Item = Edge>,
    mask: &DelayMask,
) -> Result<(), String> {
    for e in edges {
        let (a, b) = (layers[e.lo().index()], layers[e.hi().index()]);
        if mask.is_constrained(e) {
            if a != b {
                return Err(format!("constrained edge {e:?} spans layers {a} and {b}"));
            }
        } else if a.abs_diff(b) > 1 {
            return Err(format!("unconstrained edge {e:?} spans layers {a} and {b}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_net::{generators, node};

    fn e(i: usize, j: usize) -> Edge {
        Edge::between(i, j)
    }

    #[test]
    fn no_mask_gives_hop_distance() {
        let edges = generators::path(5);
        let layers = flexible_layers(5, edges.clone(), &DelayMask::new(), node(0));
        assert_eq!(layers, vec![0, 1, 2, 3, 4]);
        check_layer_properties(&layers, edges, &DelayMask::new()).unwrap();
    }

    #[test]
    fn constrained_prefix_is_free() {
        // Path 0-1-2-3-4 with {0,1} and {1,2} constrained: layers 0,0,0,1,2.
        let edges = generators::path(5);
        let mask = DelayMask::uniform([e(0, 1), e(1, 2)], 1.0);
        let layers = flexible_layers(5, edges.clone(), &mask, node(0));
        assert_eq!(layers, vec![0, 0, 0, 1, 2]);
        check_layer_properties(&layers, edges, &mask).unwrap();
    }

    #[test]
    fn shortcut_through_constrained_edges() {
        // Ring of 6 with half the ring constrained: flexible distance wraps
        // through the free side.
        let edges = generators::ring(6);
        let mask = DelayMask::uniform([e(0, 1), e(1, 2), e(2, 3)], 0.5);
        let layers = flexible_layers(6, edges.clone(), &mask, node(0));
        // 0,1,2,3 are all reachable through constrained edges: layer 0.
        assert_eq!(layers[0], 0);
        assert_eq!(layers[1], 0);
        assert_eq!(layers[2], 0);
        assert_eq!(layers[3], 0);
        // 4 borders 3 (layer 0) and 5; 5 borders 0.
        assert_eq!(layers[4], 1);
        assert_eq!(layers[5], 1);
        check_layer_properties(&layers, edges, &mask).unwrap();
    }

    #[test]
    fn mask_accessors() {
        let mut m = DelayMask::new();
        assert!(m.is_empty());
        m.constrain(e(0, 1), 0.7);
        assert_eq!(m.len(), 1);
        assert!(m.is_constrained(e(0, 1)));
        assert_eq!(m.delay_of(e(0, 1)), Some(0.7));
        assert_eq!(m.delay_of(e(1, 2)), None);
    }

    #[test]
    fn layer_property_checker_detects_violations() {
        // Fabricated bad layers.
        let layers = vec![0, 2];
        let err = check_layer_properties(&layers, [e(0, 1)], &DelayMask::new());
        assert!(err.is_err());
        let mask = DelayMask::uniform([e(0, 1)], 1.0);
        let err2 = check_layer_properties(&[0, 1], [e(0, 1)], &mask);
        assert!(err2.is_err());
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_rejected() {
        let _ = flexible_layers(3, [e(0, 1)], &DelayMask::new(), node(0));
    }
}
