#![warn(missing_docs)]

//! # gcs-lowerbound
//!
//! Executable versions of the paper's lower-bound machinery (Section 4):
//!
//! * [`mask`] — delay masks `M = (E_C, P)` and the *flexible distance*
//!   `dist_M(u, v)` (minimum number of unconstrained edges on any path,
//!   Definition 4.3), computed by 0–1 BFS.
//! * [`masking`] — the Masking Lemma (Lemma 4.2) made executable: the
//!   closed-form clock functions of executions α and β, the
//!   indistinguishability time-mapping, and a legality checker that
//!   verifies the Part II case analysis (β-delays in `[0, T]`, constrained
//!   edges in `[P/(1+ρ), P]`) for arbitrary send/receive pairs.
//! * [`subsequence`] — Lemma 4.3: extraction of a subsequence whose
//!   consecutive gaps all lie in `[c−d, c]`, used to place the new edges
//!   `E_new` carrying prescribed skew.
//! * [`theorem41`] — the Theorem 4.1 scenario: the two-chain network with
//!   delay-masked blocks, the β adversary (rates + delays) that drives a
//!   real algorithm into the Ω(n) skew configuration of Figure 1(a), and
//!   the `E_new` placement of Figure 1(b).
//!
//! # Example
//!
//! Lemma 4.3 made executable: from any increasing sequence, extract a
//! subsequence whose consecutive gaps all land in `[c−d, c]`, verified by
//! the bundled checker:
//!
//! ```
//! use gcs_lowerbound::subsequence::{check_lemma43, lemma43_subsequence};
//!
//! let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.7).collect();
//! let (c, d) = (3.0, 1.0);
//! let picked = lemma43_subsequence(&xs, c, d);
//! check_lemma43(&xs, c, d, &picked).expect("gaps must lie in [c-d, c]");
//! for w in picked.windows(2) {
//!     let gap = xs[w[1]] - xs[w[0]];
//!     assert!(gap >= c - d - 1e-12 && gap <= c + 1e-12);
//! }
//! ```

pub mod mask;
pub mod masking;
pub mod subsequence;
pub mod theorem41;

pub use mask::{flexible_layers, DelayMask};
pub use subsequence::lemma43_subsequence;
pub use theorem41::Theorem41Scenario;
