//! Process-memory measurement for experiment reports.
//!
//! Memory claims in `ScenarioReport`s ("peak memory independent of the
//! churn-event count") must be *measured*, not asserted. On Linux the
//! kernel already tracks exactly what we need in `/proc/self/status`:
//! `VmHWM` (peak resident set, the high-water mark) and `VmRSS` (current
//! resident set). Elsewhere both readers return `None` and reports print
//! `n/a` — no unsafe code, no allocator shims.
//!
//! Caveat: the counters are **process-wide**, and the high-water mark is
//! monotone over the process lifetime. A peak reading is faithful to a
//! workload only when that workload runs in a fresh process (the
//! standalone `exp_*` binaries, including the CI smoke runs); a reading
//! taken after *any* earlier work in the same process — concurrent or
//! sequenced — reports the union of everything so far. For per-phase
//! attribution inside one process, read [`current_rss_bytes`] while the
//! phase's allocations are still live.

/// Peak resident set size of this process in bytes, if the platform
/// exposes it. Reported as `max(VmHWM, VmRSS)`: some kernels update the
/// high-water mark lazily, so the current resident set can momentarily
/// exceed it — the true peak is never below either reading.
pub fn peak_rss_bytes() -> Option<u64> {
    let hwm = read_status_kb("VmHWM:");
    let rss = read_status_kb("VmRSS:");
    match (hwm, rss) {
        (Some(h), Some(r)) => Some(h.max(r) * 1024),
        (one, other) => one.or(other).map(|kb| kb * 1024),
    }
}

/// Current resident set size of this process in bytes (`VmRSS`), if the
/// platform exposes it.
pub fn current_rss_bytes() -> Option<u64> {
    read_status_kb("VmRSS:").map(|kb| kb * 1024)
}

fn read_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.strip_prefix(field)?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()
}

/// Formats a byte count as mebibytes for tables (`"123.4"`), or `"n/a"`.
pub fn fmt_mib(bytes: Option<u64>) -> String {
    match bytes {
        Some(b) => format!("{:.1}", b as f64 / (1024.0 * 1024.0)),
        None => "n/a".to_string(),
    }
}

/// Per-plane heap census, re-exported from the engine so analysis and
/// report code name one type. Unlike [`peak_rss_bytes`] this is *not*
/// process-wide: it attributes live bytes to the engine's planes
/// (topology / drift / automaton-hot / automaton-cold / wheel / staging /
/// dispatch-scratch) at the instant it is read.
pub use gcs_sim::PlaneBytes;

/// Formats one plane census as a compact single-line summary in MiB,
/// e.g. `topo 1.2 | drift 0.3 | hot 4.5 | cold 0.1 | wheel 0.2 |
/// staged 0.1 | scratch 0.1`.
pub fn fmt_planes(p: &PlaneBytes) -> String {
    let mib = |b: usize| b as f64 / (1024.0 * 1024.0);
    format!(
        "topo {:.1} | drift {:.1} | hot {:.1} | cold {:.1} | wheel {:.1} | staged {:.1} | scratch {:.1}",
        mib(p.topology),
        mib(p.drift),
        mib(p.automaton_hot),
        mib(p.automaton_cold),
        mib(p.wheel),
        mib(p.staging),
        mib(p.dispatch_scratch)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_readers_return_plausible_values_on_linux() {
        let cur = current_rss_bytes().expect("linux exposes VmRSS");
        let peak = peak_rss_bytes().expect("linux exposes VmHWM/VmRSS");
        assert!(peak >= cur, "peak {peak} below the current reading {cur}");
        assert!(cur > 100 * 1024, "a test process uses more than 100 KiB");
    }

    #[test]
    fn fmt_mib_handles_both_cases() {
        assert_eq!(fmt_mib(None), "n/a");
        assert_eq!(fmt_mib(Some(10 * 1024 * 1024)), "10.0");
    }

    #[test]
    fn fmt_planes_lists_every_plane() {
        let p = PlaneBytes {
            topology: 1024 * 1024,
            drift: 0,
            automaton_hot: 2 * 1024 * 1024,
            automaton_cold: 512 * 1024,
            wheel: 0,
            staging: 128 * 1024,
            dispatch_scratch: 256 * 1024,
        };
        assert_eq!(
            fmt_planes(&p),
            "topo 1.0 | drift 0.0 | hot 2.0 | cold 0.5 | wheel 0.0 | staged 0.1 | scratch 0.2"
        );
        assert_eq!(
            p.total(),
            1024 * 1024 * 3 + 512 * 1024 + 128 * 1024 + 256 * 1024
        );
    }
}
