#![warn(missing_docs)]

//! # gcs-analysis
//!
//! Measurement, statistics, reporting and parallel sweeps for gradient
//! clock synchronization experiments.
//!
//! * [`metrics`] — global and local skew over simulator snapshots.
//! * [`recorder`] — time-series recording of an execution (global skew,
//!   worst local skew, watched-edge skews), with optional invariant
//!   checking.
//! * [`stats`] — summary statistics (min/mean/max/percentiles) and simple
//!   least-squares fits used to check the paper's asymptotic shapes.
//! * [`table`] — aligned text tables for experiment output.
//! * [`csv`] — CSV export of recorded series.
//! * [`sweep`] — embarrassingly parallel parameter sweeps on crossbeam
//!   scoped threads (one independent simulation per task; no shared
//!   mutable state, following the hpc-parallel guidance of parallelizing
//!   the outermost independent loop).

pub mod csv;
pub mod metrics;
pub mod recorder;
pub mod stats;
pub mod sweep;
pub mod table;

pub use metrics::{global_skew, local_skews, max_local_skew};
pub use recorder::{Recorder, Sample};
pub use stats::Summary;
pub use sweep::parallel_map;
pub use table::Table;
