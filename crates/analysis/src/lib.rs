#![warn(missing_docs)]

//! # gcs-analysis
//!
//! Measurement, statistics, reporting and parallel sweeps for gradient
//! clock synchronization experiments.
//!
//! * [`metrics`] — global and local skew over simulator snapshots (one
//!   `O(n)` snapshot pass per query, `O(1)` per edge).
//! * [`recorder`] — time-series recording of an execution (global skew,
//!   worst local skew, watched-edge skews), with optional invariant
//!   checking, streaming [`recorder::Sink`]s and bounded retention.
//! * [`probe`] — event-driven streaming observability: incremental
//!   per-edge skew maintained from the engine's per-instant touched-node
//!   reports, with a certified error bound — no `O(n + m)` snapshots.
//! * [`mem`] — process peak-RSS readers (`/proc/self/status`), so memory
//!   claims in reports are measured rather than asserted.
//! * [`stats`] — summary statistics (min/mean/max/percentiles) and simple
//!   least-squares fits used to check the paper's asymptotic shapes.
//! * [`table`] — aligned text tables for experiment output.
//! * [`csv`] — CSV export of recorded series.
//! * [`sweep`] — embarrassingly parallel parameter sweeps and the
//!   scenario-level [`sweep::fan_out`] runner, both on `std::thread::scope`
//!   (one independent simulation per task; no shared mutable state —
//!   parallelism lives at the outermost independent loop).
//!
//! # Example
//!
//! A parameter sweep fanned out over scoped threads, summarized with the
//! stats helpers — results always come back in input order:
//!
//! ```
//! use gcs_analysis::{parallel_map, Summary};
//!
//! let ns: Vec<usize> = vec![8, 16, 32, 64];
//! // Stand-in for "run one simulation per n" — any Fn(&I) -> O + Sync.
//! let measured = parallel_map(&ns, |&n| (n as f64).sqrt());
//! assert_eq!(measured.len(), ns.len());
//! assert!(measured.windows(2).all(|w| w[0] < w[1]), "order preserved");
//!
//! let summary = Summary::of(&measured);
//! assert_eq!(summary.max, 8.0);
//! assert!(summary.mean > summary.min && summary.mean < summary.max);
//! ```

pub mod csv;
pub mod mem;
pub mod metrics;
pub mod probe;
pub mod recorder;
pub mod stats;
pub mod sweep;
pub mod table;

pub use mem::{current_rss_bytes, peak_rss_bytes};
pub use metrics::{global_skew, local_skews, max_local_skew};
pub use probe::SkewStream;
pub use recorder::{CsvSink, Recorder, Sample, Sink};
pub use stats::Summary;
pub use sweep::{fan_out, parallel_map};
pub use table::Table;
