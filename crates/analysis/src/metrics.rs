//! Skew metrics over simulator snapshots.
//!
//! The edge-set metrics take **one** logical snapshot (one `O(n)` pass of
//! clock reads) and index into it per endpoint, instead of re-deriving
//! `sim.logical(u)` — a hardware-clock read plus an automaton query — for
//! both endpoints of every edge. At `m` edges that turns `2m` clock reads
//! into `n`, which is what keeps fixed-cadence sampling affordable as the
//! graphs grow.
//!
//! For fixed-cadence sampling **loops**, the `*_with` variants
//! additionally reuse a caller-held scratch buffer through
//! [`Simulator::logical_snapshot_into`], so a long recording allocates
//! one snapshot vector total instead of one per sample (the
//! [`Recorder`](crate::Recorder) samples this way).

use gcs_net::Edge;
use gcs_sim::{Automaton, Simulator};

/// Global skew of a clock vector: `max_u L_u − min_u L_v` (Definition 3.2).
pub fn global_skew(logical: &[f64]) -> f64 {
    assert!(!logical.is_empty());
    let max = logical.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = logical.iter().cloned().fold(f64::INFINITY, f64::min);
    max - min
}

/// Skew on one edge at the simulator's current time.
pub fn edge_skew<A: Automaton>(sim: &Simulator<A>, e: Edge) -> f64 {
    (sim.logical(e.lo()) - sim.logical(e.hi())).abs()
}

/// Skew on one edge, read from a prepared logical snapshot.
#[inline]
pub fn edge_skew_in(logical: &[f64], e: Edge) -> f64 {
    (logical[e.lo().index()] - logical[e.hi().index()]).abs()
}

/// `(edge, |L_u − L_v|)` for every edge currently present.
pub fn local_skews<A: Automaton>(sim: &Simulator<A>) -> Vec<(Edge, f64)> {
    let logical = sim.logical_snapshot();
    sim.graph()
        .edges()
        .map(|e| (e, edge_skew_in(&logical, e)))
        .collect()
}

/// The worst local skew over all currently present edges (0 if none).
pub fn max_local_skew<A: Automaton>(sim: &Simulator<A>) -> f64 {
    max_local_skew_in(&sim.logical_snapshot(), sim.graph())
}

/// [`max_local_skew`] reusing a caller-held snapshot buffer — the
/// allocation-free variant for sampling loops. On return `scratch` holds
/// the logical snapshot the result was computed from, for further
/// same-instant metrics ([`global_skew`], [`edge_skew_in`]).
pub fn max_local_skew_with<A: Automaton>(sim: &Simulator<A>, scratch: &mut Vec<f64>) -> f64 {
    sim.logical_snapshot_into(scratch);
    max_local_skew_in(scratch, sim.graph())
}

/// The worst local skew, read from a prepared logical snapshot (shared by
/// [`max_local_skew`] and the recorder, which reuses one snapshot for
/// several metrics).
pub fn max_local_skew_in(logical: &[f64], graph: &gcs_net::DynamicGraph) -> f64 {
    graph
        .edges()
        .map(|e| edge_skew_in(logical, e))
        .fold(0.0, f64::max)
}

/// The worst local skew restricted to a fixed edge set (edges absent from
/// the graph are skipped).
pub fn max_local_skew_over<A: Automaton>(sim: &Simulator<A>, edges: &[Edge]) -> f64 {
    max_local_skew_over_with(sim, edges, &mut Vec::new())
}

/// [`max_local_skew_over`] reusing a caller-held snapshot buffer.
pub fn max_local_skew_over_with<A: Automaton>(
    sim: &Simulator<A>,
    edges: &[Edge],
    scratch: &mut Vec<f64>,
) -> f64 {
    sim.logical_snapshot_into(scratch);
    edges
        .iter()
        .filter(|e| sim.graph().contains(**e))
        .map(|&e| edge_skew_in(scratch, e))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_skew_spread() {
        assert_eq!(global_skew(&[1.0, 5.0, 3.0]), 4.0);
        assert_eq!(global_skew(&[2.0]), 0.0);
    }

    #[test]
    fn edge_skew_in_indexes_snapshot() {
        let logical = [10.0, 4.0, 7.5];
        assert_eq!(edge_skew_in(&logical, Edge::between(0, 1)), 6.0);
        assert_eq!(edge_skew_in(&logical, Edge::between(2, 1)), 3.5);
    }

    #[test]
    #[should_panic]
    fn global_skew_empty_rejected() {
        let _ = global_skew(&[]);
    }
}
