//! Skew metrics over simulator snapshots.

use gcs_net::Edge;
use gcs_sim::{Automaton, Simulator};

/// Global skew of a clock vector: `max_u L_u − min_u L_v` (Definition 3.2).
pub fn global_skew(logical: &[f64]) -> f64 {
    assert!(!logical.is_empty());
    let max = logical.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = logical.iter().cloned().fold(f64::INFINITY, f64::min);
    max - min
}

/// Skew on one edge at the simulator's current time.
pub fn edge_skew<A: Automaton>(sim: &Simulator<A>, e: Edge) -> f64 {
    (sim.logical(e.lo()) - sim.logical(e.hi())).abs()
}

/// `(edge, |L_u − L_v|)` for every edge currently present.
pub fn local_skews<A: Automaton>(sim: &Simulator<A>) -> Vec<(Edge, f64)> {
    sim.graph()
        .edges()
        .map(|e| (e, edge_skew(sim, e)))
        .collect()
}

/// The worst local skew over all currently present edges (0 if none).
pub fn max_local_skew<A: Automaton>(sim: &Simulator<A>) -> f64 {
    sim.graph()
        .edges()
        .map(|e| edge_skew(sim, e))
        .fold(0.0, f64::max)
}

/// The worst local skew restricted to a fixed edge set (edges absent from
/// the graph are skipped).
pub fn max_local_skew_over<A: Automaton>(sim: &Simulator<A>, edges: &[Edge]) -> f64 {
    edges
        .iter()
        .filter(|e| sim.graph().contains(**e))
        .map(|&e| edge_skew(sim, e))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_skew_spread() {
        assert_eq!(global_skew(&[1.0, 5.0, 3.0]), 4.0);
        assert_eq!(global_skew(&[2.0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn global_skew_empty_rejected() {
        let _ = global_skew(&[]);
    }
}
