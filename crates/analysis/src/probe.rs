//! Event-driven streaming observability.
//!
//! The pull-snapshot [`Recorder`](crate::Recorder) evaluates every node's
//! logical clock (`O(n)`) and every edge's skew (`O(m)`) at each sample
//! instant, and at `n = 65 536` that dominates the run. This module keeps
//! skew observability **streaming**: the engine reports, after every
//! processed instant, which nodes' handlers ran
//! ([`Simulator::run_until_with`]), and a [`SkewStream`] maintains
//! per-node clock offsets and per-edge skews *incrementally* — exact for
//! every touched node, nominally advanced (rate 1) for untouched ones.
//!
//! ## The error certificate
//!
//! Between exact evaluations a node's logical clock advances at its
//! hardware rate (plus non-negative discrete jumps, which always coincide
//! with events — i.e. with touches). The nominal advance therefore errs by
//! at most `ρ̂ · staleness` per node, where `ρ̂` is the drift bound and
//! `staleness` is the time since the node's last touch — so any reported
//! *skew* (a difference of two clock values) errs by at most twice that.
//! [`SkewStream`] tracks the worst staleness it ever relied on —
//! including, for the global extrema, the staleness of the
//! least-recently-touched node — and exposes
//! [`SkewStream::error_bound`]: the reported peaks are exact up to that
//! bound, with `O(touched · degree)` work per instant and `O(n)` memory.
//! Under any live protocol that ticks every `ΔH` subjective time, the
//! staleness (hence the error) is bounded by a constant independent of
//! the horizon.

use gcs_clocks::Time;
use gcs_net::NodeId;
use gcs_sim::{Automaton, Simulator};

/// Incremental global/local skew tracking, fed from engine instants.
#[derive(Clone, Debug)]
pub struct SkewStream {
    /// Drift bound `ρ̂` used for the error certificate.
    rho_hat: f64,
    /// `L_u(stamp_u) − stamp_u`: the node's clock, detrended by the
    /// nominal rate-1 advance, at its last exact evaluation.
    offsets: Vec<f64>,
    /// Last exact evaluation time per node.
    stamps: Vec<f64>,
    /// Running extrema of `offsets` with their witness nodes (refreshed
    /// by full rescan every [`refresh_every`](Self::new) instants; kept
    /// current between rescans while that is cheap — see `dirty`).
    min_offset: f64,
    max_offset: f64,
    argmin: usize,
    argmax: usize,
    /// Set when a witness node's offset moved *away* from its extremum —
    /// the cached extremum may then belong to no current cache entry, so
    /// folding it into the global peak would pair values from different
    /// times (overreporting beyond the certificate). While dirty, the
    /// global peak is not advanced; the next rescan recomputes the
    /// extrema consistently and clears the flag.
    dirty: bool,
    /// Conservative lower bound on `min(stamps)`: recomputed at each
    /// rescan. Stamps only ever increase, so a cached minimum never
    /// overestimates the true one — using it overestimates staleness,
    /// keeping the certificate sound between rescans.
    min_stamp: f64,
    /// Peak of the streamed global-skew estimate.
    peak_global: f64,
    /// Peak of the streamed per-edge skew estimate.
    peak_local: f64,
    /// Worst staleness of any cached value actually used — including, at
    /// every global-skew update, the (conservative) staleness of the
    /// least-recently-touched node, since the offset extrema may rest on
    /// any cached entry.
    max_staleness_used: f64,
    refresh_every: u64,
    instants_seen: u64,
}

impl SkewStream {
    /// A tracker over `n` nodes (all clocks start at 0 at time 0) under
    /// drift bound `rho_hat`. `refresh_every` controls how often (in
    /// instants) the offset extrema are recomputed by a full `O(n)`
    /// rescan; between rescans they are maintained monotonically.
    pub fn new(n: usize, rho_hat: f64, refresh_every: u64) -> Self {
        assert!(n > 0, "need at least one node");
        assert!((0.0..1.0).contains(&rho_hat));
        assert!(refresh_every >= 1);
        SkewStream {
            rho_hat,
            offsets: vec![0.0; n],
            stamps: vec![0.0; n],
            min_offset: 0.0,
            max_offset: 0.0,
            argmin: 0,
            argmax: 0,
            dirty: false,
            min_stamp: 0.0,
            peak_global: 0.0,
            peak_local: 0.0,
            max_staleness_used: 0.0,
            refresh_every,
            instants_seen: 0,
        }
    }

    /// Feeds one engine instant: `touched` are the nodes whose handlers
    /// ran (as delivered by [`Simulator::run_until_with`]). Evaluates the
    /// touched nodes exactly, refreshes their incident-edge skews, and
    /// advances the running peaks.
    pub fn observe<A: Automaton>(&mut self, sim: &Simulator<A>, t: Time, touched: &[NodeId]) {
        let now = t.seconds();
        self.instants_seen += 1;
        for &u in touched {
            let exact = sim.logical(u);
            let offset = exact - now;
            self.offsets[u.index()] = offset;
            self.stamps[u.index()] = now;
            if offset >= self.max_offset {
                self.max_offset = offset;
                self.argmax = u.index();
            } else if u.index() == self.argmax {
                self.dirty = true;
            }
            if offset <= self.min_offset {
                self.min_offset = offset;
                self.argmin = u.index();
            } else if u.index() == self.argmin {
                self.dirty = true;
            }
            for v in sim.graph().neighbors(u) {
                let staleness = now - self.stamps[v.index()];
                let estimate_v = self.offsets[v.index()] + now;
                self.max_staleness_used = self.max_staleness_used.max(staleness);
                self.peak_local = self.peak_local.max((exact - estimate_v).abs());
            }
        }
        if self.instants_seen.is_multiple_of(self.refresh_every) {
            self.rescan_extrema();
        }
        if !self.dirty {
            // The extrema may rest on *any* cached offset, so charge the
            // certificate with the staleness of the least-recently-touched
            // node (conservatively, via the cached minimum stamp).
            self.max_staleness_used = self.max_staleness_used.max(now - self.min_stamp);
            self.peak_global = self.peak_global.max(self.max_offset - self.min_offset);
        }
    }

    /// Recomputes the offset extrema and the minimum stamp exactly
    /// (offsets of untouched nodes are unchanged since their stamps, so
    /// this never reads the sim).
    fn rescan_extrema(&mut self) {
        self.min_offset = f64::INFINITY;
        self.max_offset = f64::NEG_INFINITY;
        for (i, &o) in self.offsets.iter().enumerate() {
            if o < self.min_offset {
                self.min_offset = o;
                self.argmin = i;
            }
            if o > self.max_offset {
                self.max_offset = o;
                self.argmax = i;
            }
        }
        self.min_stamp = self.stamps.iter().cloned().fold(f64::INFINITY, f64::min);
        self.dirty = false;
    }

    /// Peak streamed global skew (max − min of detrended clock offsets,
    /// advanced only while the cached extrema are mutually consistent —
    /// between an extremum's invalidation and the next rescan the peak
    /// holds rather than pairing values from different times).
    pub fn peak_global_skew(&self) -> f64 {
        self.peak_global
    }

    /// Peak streamed per-edge skew over edges incident to touched nodes.
    pub fn peak_local_skew(&self) -> f64 {
        self.peak_local
    }

    /// Certified upper bound on the error of any reported skew peak:
    /// `2 ρ̂ ×` the worst staleness of a cached clock the tracker ever
    /// relied on. A skew is a difference of two clock values, each of
    /// which may be a nominally-advanced cache entry erring by at most
    /// `ρ̂ × staleness`, hence the factor 2 (for the local peak one
    /// endpoint is always exact, so this over-covers it).
    pub fn error_bound(&self) -> f64 {
        2.0 * self.rho_hat * self.max_staleness_used
    }

    /// Worst staleness of any cached clock value used so far.
    pub fn max_staleness_used(&self) -> f64 {
        self.max_staleness_used
    }

    /// Instants observed so far.
    pub fn instants_seen(&self) -> u64 {
        self.instants_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::time::at;
    use gcs_core::{AlgoParams, GradientNode};
    use gcs_net::{generators, ScheduleSource, TopologySchedule};
    use gcs_sim::{DelayStrategy, ModelParams, SimBuilder};

    fn run_with_stream(n: usize, horizon: f64) -> (SkewStream, f64, f64) {
        let model = ModelParams::new(0.01, 1.0, 2.0);
        let params = AlgoParams::with_minimal_b0(model, n, 0.5);
        let mut sim = SimBuilder::topology(
            model,
            ScheduleSource::new(TopologySchedule::static_graph(n, generators::path(n))),
        )
        .delay(DelayStrategy::Max)
        .build_with(move |_| GradientNode::new(params));
        let mut stream = SkewStream::new(n, model.rho, 16);
        sim.run_until_with(at(horizon), |sim, t, touched| {
            stream.observe(sim, t, touched);
        });
        // Exact references at the end of the run.
        let logical = sim.logical_snapshot();
        let exact_global = crate::metrics::global_skew(&logical);
        let exact_local = crate::metrics::max_local_skew(&sim);
        (stream, exact_global, exact_local)
    }

    #[test]
    fn streams_skew_within_certified_error() {
        let (stream, exact_global, exact_local) = run_with_stream(16, 40.0);
        assert!(stream.instants_seen() > 0);
        let eps = stream.error_bound();
        // Peaks dominate the final exact values up to the certificate
        // (peaks are over the whole run, the exact values are end-of-run).
        assert!(
            stream.peak_global_skew() + eps >= exact_global,
            "streamed {} + {eps} < exact {exact_global}",
            stream.peak_global_skew()
        );
        assert!(stream.peak_local_skew() + eps >= exact_local);
        // With perfect clocks here the certificate is exactly zero only if
        // rho were 0; it must at least be finite and small.
        assert!(eps.is_finite());
    }

    #[test]
    fn error_certificate_scales_with_staleness() {
        let (stream, _, _) = run_with_stream(8, 20.0);
        assert!(stream.max_staleness_used() >= 0.0);
        assert!((stream.error_bound() - 2.0 * 0.01 * stream.max_staleness_used()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_network_rejected() {
        let _ = SkewStream::new(0, 0.01, 8);
    }
}
