//! Parallel parameter sweeps.
//!
//! Individual simulations are inherently sequential (one global event
//! order), so parallelism lives at the sweep level: every `(parameters,
//! seed)` cell is an independent task. We fan tasks out over std scoped
//! threads with an atomic work index — the classic
//! embarrassingly-parallel outer loop, with zero shared mutable state
//! between tasks (each worker writes to its own pre-allocated output
//! slots).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, in parallel, preserving order of results.
///
/// `f` must be `Sync` (it is shared across workers) and is called exactly
/// once per item. The number of workers defaults to available parallelism
/// capped by the item count.
pub fn parallel_map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(items.len());
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<O>> = (0..items.len()).map(|_| None).collect();
    // Hand each worker a disjoint view of the results through raw slots:
    // we use a Vec of Mutex-free cells by splitting unsafe-free via
    // scoped channel collection instead.
    let (tx, rx) = std::sync::mpsc::channel::<(usize, O)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                // The receiver outlives all senders within the scope.
                let _ = tx.send((i, out));
            });
        }
        drop(tx);
        for (i, out) in rx {
            results[i] = Some(out);
        }
    });
    results
        .into_iter()
        .map(|o| o.expect("every index produced exactly once"))
        .collect()
}

/// A boxed one-shot job for [`fan_out`].
pub type Job<'a, O> = Box<dyn FnOnce() -> O + Send + 'a>;

/// Fans heterogeneous one-shot jobs out over `std::thread::scope`,
/// preserving result order.
///
/// This is the scenario-level runner behind `gcs_bench::scenario`: each
/// job is a whole experiment (itself free to call [`parallel_map`] for its
/// inner sweep). Jobs are claimed by an atomic work index; each boxed
/// closure is taken exactly once, so `FnOnce` jobs (holding owned state)
/// are fine.
pub fn fan_out<'a, O: Send>(jobs: Vec<Job<'a, O>>) -> Vec<O> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(jobs.len());
    if workers <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let slots: Vec<std::sync::Mutex<Option<Job<'a, O>>>> = jobs
        .into_iter()
        .map(|j| std::sync::Mutex::new(Some(j)))
        .collect();
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, O)>();
    let mut results: Vec<Option<O>> = (0..slots.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let slots = &slots;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job mutex poisoned")
                    .take()
                    .expect("job claimed twice");
                let _ = tx.send((i, job()));
            });
        }
        drop(tx);
        for (i, out) in rx {
            results[i] = Some(out);
        }
    });
    results
        .into_iter()
        .map(|o| o.expect("every job produced exactly once"))
        .collect()
}

/// Runs `f` for every `(param, seed)` pair with seeds `0..repeats`, in
/// parallel, and returns `repeats` results per parameter, grouped by
/// parameter in input order.
pub fn parallel_repeats<P, O, F>(params: &[P], repeats: u64, f: F) -> Vec<Vec<O>>
where
    P: Sync,
    O: Send,
    F: Fn(&P, u64) -> O + Sync,
{
    let tasks: Vec<(usize, u64)> = (0..params.len())
        .flat_map(|i| (0..repeats).map(move |s| (i, s)))
        .collect();
    let flat = parallel_map(&tasks, |&(i, seed)| f(&params[i], seed));
    let mut grouped: Vec<Vec<O>> = (0..params.len()).map(|_| Vec::new()).collect();
    for ((i, _), out) in tasks.into_iter().zip(flat) {
        grouped[i].push(out);
    }
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn calls_each_item_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<u32> = (0..257).collect();
        let _ = parallel_map(&items, |_| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(&Vec::<u32>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn fan_out_preserves_order_and_runs_each_once() {
        let calls = AtomicU64::new(0);
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..37u64)
            .map(|i| {
                let calls = &calls;
                Box::new(move || {
                    calls.fetch_add(1, Ordering::Relaxed);
                    i * 3
                }) as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect();
        let out = fan_out(jobs);
        assert_eq!(out, (0..37u64).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::Relaxed), 37);
        assert!(fan_out::<u64>(Vec::new()).is_empty());
    }

    #[test]
    fn repeats_grouping() {
        let grouped = parallel_repeats(&[10u64, 20u64], 3, |&p, seed| p + seed);
        assert_eq!(grouped, vec![vec![10, 11, 12], vec![20, 21, 22]]);
    }

    #[test]
    fn parallel_results_match_serial() {
        // A mildly expensive pure function: result must be identical to the
        // serial map regardless of scheduling.
        let items: Vec<u64> = (1..200).collect();
        let work = |&x: &u64| -> u64 {
            let mut acc = x;
            for _ in 0..1000 {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            acc
        };
        assert_eq!(
            parallel_map(&items, work),
            items.iter().map(work).collect::<Vec<_>>()
        );
    }
}
