//! Minimal CSV export (no third-party dependency needed for plain numeric
//! tables), including a bounded-memory streaming writer.

use std::fs::File;
use std::io::{BufWriter, Result, Write};
use std::path::Path;

/// Writes a header plus numeric rows to `path`.
pub fn write_csv(path: impl AsRef<Path>, header: &[&str], rows: &[Vec<f64>]) -> Result<()> {
    let mut w = CsvWriter::create(path, header)?;
    for row in rows {
        w.row(row)?;
    }
    w.flush()
}

/// An incremental CSV writer: rows go straight to a buffered file, so a
/// long-running recording never holds its series in memory.
#[derive(Debug)]
pub struct CsvWriter {
    w: BufWriter<File>,
    width: usize,
    rows_written: u64,
}

impl CsvWriter {
    /// Creates `path` and writes the header line.
    pub fn create(path: impl AsRef<Path>, header: &[&str]) -> Result<Self> {
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        writeln!(w, "{}", header.join(","))?;
        Ok(CsvWriter {
            w,
            width: header.len(),
            rows_written: 0,
        })
    }

    /// Appends one numeric row (must match the header width).
    pub fn row(&mut self, row: &[f64]) -> Result<()> {
        assert_eq!(row.len(), self.width, "CSV row width mismatch");
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(self.w, "{}", cells.join(","))?;
        self.rows_written += 1;
        Ok(())
    }

    /// Rows written so far (excluding the header).
    pub fn rows_written(&self) -> u64 {
        self.rows_written
    }

    /// Flushes the underlying buffer.
    pub fn flush(&mut self) -> Result<()> {
        self.w.flush()
    }
}

/// Renders rows to a CSV string (used by tests and for stdout dumps).
pub fn to_csv_string(header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "CSV row width mismatch");
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_roundtrip() {
        let s = to_csv_string(&["a", "b"], &[vec![1.0, 2.5], vec![3.0, 4.0]]);
        assert_eq!(s, "a,b\n1,2.5\n3,4\n");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gcs_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv(&path, &["x"], &[vec![1.0]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x\n1\n");
    }

    #[test]
    fn streaming_writer_appends_rows() {
        let dir = std::env::temp_dir().join("gcs_csv_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.csv");
        let mut w = CsvWriter::create(&path, &["a", "b"]).unwrap();
        for i in 0..3 {
            w.row(&[i as f64, (i * 2) as f64]).unwrap();
        }
        assert_eq!(w.rows_written(), 3);
        w.flush().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n0,0\n1,2\n2,4\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn streaming_writer_rejects_bad_width() {
        let dir = std::env::temp_dir().join("gcs_csv_stream_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = CsvWriter::create(dir.join("bad.csv"), &["a", "b"]).unwrap();
        let _ = w.row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_row_rejected() {
        let _ = to_csv_string(&["a", "b"], &[vec![1.0]]);
    }
}
