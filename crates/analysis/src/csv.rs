//! Minimal CSV export (no third-party dependency needed for plain numeric
//! tables).

use std::fs::File;
use std::io::{BufWriter, Result, Write};
use std::path::Path;

/// Writes a header plus numeric rows to `path`.
pub fn write_csv(path: impl AsRef<Path>, header: &[&str], rows: &[Vec<f64>]) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "{}", header.join(","))?;
    for row in rows {
        assert_eq!(row.len(), header.len(), "CSV row width mismatch");
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(w, "{}", cells.join(","))?;
    }
    w.flush()
}

/// Renders rows to a CSV string (used by tests and for stdout dumps).
pub fn to_csv_string(header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "CSV row width mismatch");
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_roundtrip() {
        let s = to_csv_string(&["a", "b"], &[vec![1.0, 2.5], vec![3.0, 4.0]]);
        assert_eq!(s, "a,b\n1,2.5\n3,4\n");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gcs_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv(&path, &["x"], &[vec![1.0]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x\n1\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_row_rejected() {
        let _ = to_csv_string(&["a", "b"], &[vec![1.0]]);
    }
}
