//! Time-series recording of an execution.

use crate::metrics;
use gcs_clocks::Time;
use gcs_core::InvariantMonitor;
use gcs_net::{node, Edge};
use gcs_sim::{Automaton, Simulator};

/// One sampled instant of an execution.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Sample time.
    pub t: f64,
    /// Global skew `max L − min L`.
    pub global_skew: f64,
    /// Worst skew over currently present edges.
    pub max_local_skew: f64,
    /// Skew of each watched edge (`None` while the edge is absent),
    /// in the order the edges were registered.
    pub watched: Vec<Option<f64>>,
}

/// Samples a simulation at a fixed real-time cadence, optionally feeding an
/// [`InvariantMonitor`].
pub struct Recorder {
    sample_dt: f64,
    watched: Vec<Edge>,
    samples: Vec<Sample>,
    monitor: Option<InvariantMonitor>,
}

impl Recorder {
    /// A recorder sampling every `sample_dt` real-time units.
    pub fn new(sample_dt: f64) -> Self {
        assert!(sample_dt > 0.0);
        Recorder {
            sample_dt,
            watched: Vec::new(),
            samples: Vec::new(),
            monitor: None,
        }
    }

    /// Registers an edge whose skew should be tracked in every sample.
    pub fn watch(mut self, e: Edge) -> Self {
        self.watched.push(e);
        self
    }

    /// Attaches an invariant monitor that will be fed every sample.
    pub fn with_monitor(mut self, monitor: InvariantMonitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Runs `sim` from its current time to `until`, sampling on the way.
    pub fn run<A: Automaton>(&mut self, sim: &mut Simulator<A>, until: Time) {
        let mut t = sim.now().seconds();
        let end = until.seconds();
        while t < end {
            t = (t + self.sample_dt).min(end);
            sim.run_until(Time::new(t));
            self.sample_now(sim);
        }
    }

    /// Takes one sample at the simulator's current time.
    pub fn sample_now<A: Automaton>(&mut self, sim: &mut Simulator<A>) {
        let logical = sim.logical_snapshot();
        let watched = self
            .watched
            .iter()
            .map(|&e| sim.graph().contains(e).then(|| metrics::edge_skew(sim, e)))
            .collect();
        let sample = Sample {
            t: sim.now().seconds(),
            global_skew: metrics::global_skew(&logical),
            max_local_skew: metrics::max_local_skew(sim),
            watched,
        };
        if let Some(m) = &mut self.monitor {
            let lmax: Vec<f64> = (0..sim.n()).map(|i| sim.max_estimate_of(node(i))).collect();
            m.observe(sim.now(), &logical, &lmax);
        }
        self.samples.push(sample);
    }

    /// All samples so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The invariant monitor, if attached.
    pub fn monitor(&self) -> Option<&InvariantMonitor> {
        self.monitor.as_ref()
    }

    /// Maximum global skew over all samples.
    pub fn peak_global_skew(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.global_skew)
            .fold(0.0, f64::max)
    }

    /// Maximum local skew over all samples.
    pub fn peak_local_skew(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.max_local_skew)
            .fold(0.0, f64::max)
    }

    /// The first sample time at which watched edge `idx` dropped to or
    /// below `threshold` and stayed there for all later samples.
    pub fn settle_time(&self, idx: usize, threshold: f64) -> Option<f64> {
        let mut settle = None;
        for s in &self.samples {
            match s.watched.get(idx).copied().flatten() {
                Some(skew) if skew <= threshold => {
                    settle.get_or_insert(s.t);
                }
                Some(_) => settle = None,
                None => settle = None,
            }
        }
        settle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::time::at;
    use gcs_core::{AlgoParams, GradientNode};
    use gcs_net::{generators, TopologySchedule};
    use gcs_sim::{DelayStrategy, ModelParams, SimBuilder};

    fn small_sim() -> Simulator<GradientNode> {
        let model = ModelParams::new(0.01, 1.0, 2.0);
        let params = AlgoParams::with_minimal_b0(model, 4, 0.5);
        SimBuilder::new(
            model,
            TopologySchedule::static_graph(4, generators::path(4)),
        )
        .delay(DelayStrategy::Max)
        .build_with(move |_| GradientNode::new(params))
    }

    #[test]
    fn records_expected_sample_count() {
        let mut sim = small_sim();
        let mut rec = Recorder::new(1.0);
        rec.run(&mut sim, at(10.0));
        assert_eq!(rec.samples().len(), 10);
        assert!((rec.samples()[9].t - 10.0).abs() < 1e-12);
    }

    #[test]
    fn watched_edge_tracking() {
        let mut sim = small_sim();
        let mut rec = Recorder::new(1.0)
            .watch(Edge::between(0, 1))
            .watch(Edge::between(0, 3));
        rec.run(&mut sim, at(5.0));
        for s in rec.samples() {
            assert!(s.watched[0].is_some(), "present edge must be tracked");
            assert!(s.watched[1].is_none(), "absent edge must be None");
        }
    }

    #[test]
    fn settle_time_finds_stable_prefix() {
        let mut rec = Recorder::new(1.0).watch(Edge::between(0, 1));
        // Hand-craft samples: skew 5, 3, 1, 2, 1, 0.5 with threshold 2 ⇒
        // settles at the *last* descent below 2 that persists (t=4).
        for (t, skew) in [
            (0.0, 5.0),
            (1.0, 3.0),
            (2.0, 1.0),
            (3.0, 2.5),
            (4.0, 1.0),
            (5.0, 0.5),
        ] {
            rec.samples.push(Sample {
                t,
                global_skew: skew,
                max_local_skew: skew,
                watched: vec![Some(skew)],
            });
        }
        assert_eq!(rec.settle_time(0, 2.0), Some(4.0));
        assert_eq!(rec.settle_time(0, 0.1), None);
        assert!((rec.peak_global_skew() - 5.0).abs() < 1e-12);
        assert!((rec.peak_local_skew() - 5.0).abs() < 1e-12);
    }
}
