//! Time-series recording of an execution, with bounded-memory streaming.
//!
//! [`Recorder`] samples a simulation at a fixed real-time cadence. By
//! default it retains every [`Sample`] (the historical behaviour small
//! experiments rely on), but two knobs make long, large-`n` recordings
//! bounded-memory:
//!
//! * [`Recorder::stream_to`] attaches [`Sink`]s — every sample is pushed
//!   to each sink the moment it is taken (e.g. a [`CsvSink`] writing rows
//!   straight to disk through the incremental
//!   [`CsvWriter`](crate::csv::CsvWriter)),
//! * [`Recorder::keep_last`] caps the in-memory buffer to a tail window.
//!
//! Peak statistics are maintained as running aggregates at ingest, so they
//! are exact in every retention mode.

use crate::metrics;
use gcs_clocks::Time;
use gcs_core::InvariantMonitor;
use gcs_net::{node, Edge};
use gcs_sim::{Automaton, Simulator};
use std::path::Path;

/// One sampled instant of an execution.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Sample time.
    pub t: f64,
    /// Global skew `max L − min L`.
    pub global_skew: f64,
    /// Worst skew over currently present edges.
    pub max_local_skew: f64,
    /// Cumulative topology events applied by this time — read from the
    /// engine's streamed counter, not derived by diffing edge-set
    /// snapshots, so it costs `O(1)` per sample at any scale.
    pub topology_events: u64,
    /// Skew of each watched edge (`None` while the edge is absent),
    /// in the order the edges were registered.
    pub watched: Vec<Option<f64>>,
}

/// A streaming consumer of samples.
pub trait Sink {
    /// Called once per sample, in time order.
    fn record(&mut self, sample: &Sample);
}

/// A [`Sink`] that appends one CSV row per sample:
/// `t, global_skew, max_local_skew, topology_events, watched...` (absent
/// watched edges are written as `NaN`).
pub struct CsvSink {
    w: crate::csv::CsvWriter,
    row: Vec<f64>,
    io_errors: u64,
}

impl CsvSink {
    /// Creates the file and writes a header for `watched` watched edges.
    pub fn create(path: impl AsRef<Path>, watched: usize) -> std::io::Result<Self> {
        let mut header: Vec<String> = vec![
            "t".to_string(),
            "global_skew".to_string(),
            "max_local_skew".to_string(),
            "topology_events".to_string(),
        ];
        header.extend((0..watched).map(|i| format!("watched_{i}")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        Ok(CsvSink {
            w: crate::csv::CsvWriter::create(path, &header_refs)?,
            row: Vec::new(),
            io_errors: 0,
        })
    }

    /// Rows handed to the writer so far (buffered rows count; check
    /// [`io_error_count`](Self::io_error_count) for failures).
    pub fn rows_written(&self) -> u64 {
        self.w.rows_written()
    }

    /// Number of row writes that failed (sticky; a non-zero value means
    /// the CSV on disk is incomplete).
    pub fn io_error_count(&self) -> u64 {
        self.io_errors
    }
}

impl Sink for CsvSink {
    fn record(&mut self, sample: &Sample) {
        self.row.clear();
        self.row.extend([
            sample.t,
            sample.global_skew,
            sample.max_local_skew,
            sample.topology_events as f64,
        ]);
        self.row
            .extend(sample.watched.iter().map(|w| w.unwrap_or(f64::NAN)));
        // A failed write must not abort the simulation mid-run, but it
        // must not vanish either: the sticky error counter records it.
        // Rows stay in the BufWriter until it fills or the sink drops —
        // flushing per row would mean one syscall per sample.
        if self.w.row(&self.row).is_err() {
            self.io_errors += 1;
        }
    }
}

impl Drop for CsvSink {
    fn drop(&mut self) {
        if self.w.flush().is_err() {
            self.io_errors += 1;
        }
    }
}

/// Samples a simulation at a fixed real-time cadence, optionally feeding an
/// [`InvariantMonitor`] and any number of streaming [`Sink`]s.
pub struct Recorder {
    sample_dt: f64,
    watched: Vec<Edge>,
    samples: Vec<Sample>,
    keep_last: Option<usize>,
    sinks: Vec<Box<dyn Sink>>,
    monitor: Option<InvariantMonitor>,
    peak_global: f64,
    peak_local: f64,
    samples_taken: u64,
    /// Reused logical-snapshot buffer: a long recording allocates one
    /// snapshot vector total, not one per sample.
    snap_buf: Vec<f64>,
    /// Reused `Lmax` buffer for the invariant monitor.
    lmax_buf: Vec<f64>,
}

impl Recorder {
    /// A recorder sampling every `sample_dt` real-time units.
    pub fn new(sample_dt: f64) -> Self {
        assert!(sample_dt > 0.0);
        Recorder {
            sample_dt,
            watched: Vec::new(),
            samples: Vec::new(),
            keep_last: None,
            sinks: Vec::new(),
            monitor: None,
            peak_global: 0.0,
            peak_local: 0.0,
            samples_taken: 0,
            snap_buf: Vec::new(),
            lmax_buf: Vec::new(),
        }
    }

    /// Registers an edge whose skew should be tracked in every sample.
    pub fn watch(mut self, e: Edge) -> Self {
        self.watched.push(e);
        self
    }

    /// Attaches an invariant monitor that will be fed every sample.
    pub fn with_monitor(mut self, monitor: InvariantMonitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Attaches a streaming sink; every future sample is pushed to it.
    pub fn stream_to(mut self, sink: impl Sink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Caps the in-memory sample buffer to the most recent `n` samples
    /// (`n ≥ 1`). Peaks stay exact; [`samples`](Self::samples) and
    /// [`settle_time`](Self::settle_time) then only see the retained tail.
    pub fn keep_last(mut self, n: usize) -> Self {
        assert!(n >= 1, "must retain at least one sample");
        self.keep_last = Some(n);
        self
    }

    /// Runs `sim` from its current time to `until`, sampling on the way.
    pub fn run<A: Automaton>(&mut self, sim: &mut Simulator<A>, until: Time) {
        let mut t = sim.now().seconds();
        let end = until.seconds();
        while t < end {
            t = (t + self.sample_dt).min(end);
            sim.run_until(Time::new(t));
            self.sample_now(sim);
        }
    }

    /// Takes one sample at the simulator's current time (reusing the
    /// recorder's snapshot buffers — no per-sample allocation beyond the
    /// retained [`Sample`] itself).
    pub fn sample_now<A: Automaton>(&mut self, sim: &mut Simulator<A>) {
        sim.logical_snapshot_into(&mut self.snap_buf);
        let logical = &self.snap_buf;
        let watched = self
            .watched
            .iter()
            .map(|&e| {
                sim.graph()
                    .contains(e)
                    .then(|| metrics::edge_skew_in(logical, e))
            })
            .collect();
        let sample = Sample {
            t: sim.now().seconds(),
            global_skew: metrics::global_skew(logical),
            max_local_skew: metrics::max_local_skew_in(logical, sim.graph()),
            topology_events: sim.stats().topology_events,
            watched,
        };
        if let Some(m) = &mut self.monitor {
            self.lmax_buf.clear();
            self.lmax_buf
                .extend((0..sim.n()).map(|i| sim.max_estimate_of(node(i))));
            m.observe(sim.now(), logical, &self.lmax_buf);
        }
        self.ingest(sample);
    }

    /// Feeds one sample through aggregates, sinks and the retained buffer.
    fn ingest(&mut self, sample: Sample) {
        self.peak_global = self.peak_global.max(sample.global_skew);
        self.peak_local = self.peak_local.max(sample.max_local_skew);
        self.samples_taken += 1;
        for sink in &mut self.sinks {
            sink.record(&sample);
        }
        self.samples.push(sample);
        if let Some(cap) = self.keep_last {
            if self.samples.len() > cap {
                let excess = self.samples.len() - cap;
                self.samples.drain(..excess);
            }
        }
    }

    /// The retained samples (all of them unless [`keep_last`](Self::keep_last)
    /// is set).
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Total samples taken, including any no longer retained.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// The invariant monitor, if attached.
    pub fn monitor(&self) -> Option<&InvariantMonitor> {
        self.monitor.as_ref()
    }

    /// Maximum global skew over all samples ever taken (exact in every
    /// retention mode).
    pub fn peak_global_skew(&self) -> f64 {
        self.peak_global
    }

    /// Maximum local skew over all samples ever taken (exact in every
    /// retention mode).
    pub fn peak_local_skew(&self) -> f64 {
        self.peak_local
    }

    /// The first retained sample time at which watched edge `idx` dropped
    /// to or below `threshold` and stayed there for all later samples.
    pub fn settle_time(&self, idx: usize, threshold: f64) -> Option<f64> {
        let mut settle = None;
        for s in &self.samples {
            match s.watched.get(idx).copied().flatten() {
                Some(skew) if skew <= threshold => {
                    settle.get_or_insert(s.t);
                }
                Some(_) => settle = None,
                None => settle = None,
            }
        }
        settle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::time::at;
    use gcs_core::{AlgoParams, GradientNode};
    use gcs_net::{generators, ScheduleSource, TopologySchedule};
    use gcs_sim::{DelayStrategy, ModelParams, SimBuilder};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn small_sim() -> Simulator<GradientNode> {
        let model = ModelParams::new(0.01, 1.0, 2.0);
        let params = AlgoParams::with_minimal_b0(model, 4, 0.5);
        SimBuilder::topology(
            model,
            ScheduleSource::new(TopologySchedule::static_graph(4, generators::path(4))),
        )
        .delay(DelayStrategy::Max)
        .build_with(move |_| GradientNode::new(params))
    }

    #[test]
    fn records_expected_sample_count() {
        let mut sim = small_sim();
        let mut rec = Recorder::new(1.0);
        rec.run(&mut sim, at(10.0));
        assert_eq!(rec.samples().len(), 10);
        assert_eq!(rec.samples_taken(), 10);
        assert!((rec.samples()[9].t - 10.0).abs() < 1e-12);
    }

    #[test]
    fn watched_edge_tracking() {
        let mut sim = small_sim();
        let mut rec = Recorder::new(1.0)
            .watch(Edge::between(0, 1))
            .watch(Edge::between(0, 3));
        rec.run(&mut sim, at(5.0));
        for s in rec.samples() {
            assert!(s.watched[0].is_some(), "present edge must be tracked");
            assert!(s.watched[1].is_none(), "absent edge must be None");
        }
    }

    #[test]
    fn settle_time_finds_stable_prefix() {
        let mut rec = Recorder::new(1.0).watch(Edge::between(0, 1));
        // Hand-craft samples: skew 5, 3, 1, 2, 1, 0.5 with threshold 2 ⇒
        // settles at the *last* descent below 2 that persists (t=4).
        for (t, skew) in [
            (0.0, 5.0),
            (1.0, 3.0),
            (2.0, 1.0),
            (3.0, 2.5),
            (4.0, 1.0),
            (5.0, 0.5),
        ] {
            rec.ingest(Sample {
                t,
                global_skew: skew,
                max_local_skew: skew,
                topology_events: 0,
                watched: vec![Some(skew)],
            });
        }
        assert_eq!(rec.settle_time(0, 2.0), Some(4.0));
        assert_eq!(rec.settle_time(0, 0.1), None);
        assert!((rec.peak_global_skew() - 5.0).abs() < 1e-12);
        assert!((rec.peak_local_skew() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn keep_last_bounds_memory_but_peaks_stay_exact() {
        let mut rec = Recorder::new(1.0);
        for i in 0..100 {
            // Peak (7.5) occurs early, well before the retained tail.
            let skew = if i == 3 { 7.5 } else { 1.0 };
            rec.ingest(Sample {
                t: i as f64,
                global_skew: skew,
                max_local_skew: skew,
                topology_events: 0,
                watched: vec![],
            });
        }
        let mut bounded = Recorder::new(1.0).keep_last(8);
        for i in 0..100 {
            let skew = if i == 3 { 7.5 } else { 1.0 };
            bounded.ingest(Sample {
                t: i as f64,
                global_skew: skew,
                max_local_skew: skew,
                topology_events: 0,
                watched: vec![],
            });
        }
        assert_eq!(bounded.samples().len(), 8);
        assert_eq!(bounded.samples_taken(), 100);
        assert_eq!(bounded.samples()[0].t, 92.0);
        assert_eq!(bounded.peak_global_skew(), rec.peak_global_skew());
        assert_eq!(bounded.peak_local_skew(), rec.peak_local_skew());
    }

    #[test]
    fn sinks_receive_every_sample_in_order() {
        struct Collect(Rc<RefCell<Vec<f64>>>);
        impl Sink for Collect {
            fn record(&mut self, s: &Sample) {
                self.0.borrow_mut().push(s.t);
            }
        }
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut rec = Recorder::new(1.0)
            .keep_last(2)
            .stream_to(Collect(seen.clone()));
        let mut sim = small_sim();
        rec.run(&mut sim, at(5.0));
        assert_eq!(*seen.borrow(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(rec.samples().len(), 2, "retention capped");
    }

    #[test]
    fn csv_sink_streams_rows_to_disk() {
        let dir = std::env::temp_dir().join("gcs_recorder_csv_sink");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.csv");
        let mut rec = Recorder::new(1.0)
            .watch(Edge::between(0, 1))
            .stream_to(CsvSink::create(&path, 1).unwrap());
        let mut sim = small_sim();
        rec.run(&mut sim, at(4.0));
        drop(rec); // dropping the recorder drops (and flushes) the sink
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(
            lines[0],
            "t,global_skew,max_local_skew,topology_events,watched_0"
        );
        assert_eq!(lines.len(), 1 + 4, "header plus one row per sample");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
