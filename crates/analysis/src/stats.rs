//! Summary statistics and shape checks.
//!
//! The experiments compare *shapes* against the paper's asymptotics
//! (linear in `n`, proportional to `n/B0`, …), so alongside the usual
//! summaries we provide a least-squares line fit and a log–log slope
//! estimate.

/// Five-number-ish summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of points.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Summarizes a non-empty sample.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let count = sorted.len();
        Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean: sorted.iter().sum::<f64>() / count as f64,
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
        }
    }
}

/// Percentile by linear interpolation on a pre-sorted slice.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty() && (0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Least-squares fit `y ≈ slope·x + intercept`; returns
/// `(slope, intercept, r²)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points to fit");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    assert!(sxx > 0.0, "x values are all identical");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (slope, intercept, r2)
}

/// Slope of `log y` against `log x` — the empirical power-law exponent.
/// All inputs must be positive.
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    let lx: Vec<f64> = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0);
            x.ln()
        })
        .collect();
    let ly: Vec<f64> = ys
        .iter()
        .map(|&y| {
            assert!(y > 0.0);
            y.ln()
        })
        .collect();
    linear_fit(&lx, &ly).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.p50 - 3.0).abs() < 1e-12);
        assert!((s.p95 - 4.8).abs() < 1e-9);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p95, 7.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert!((percentile_sorted(&sorted, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let (slope, intercept, r2) = linear_fit(&xs, &ys);
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_r2_degrades_with_noise() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 4.1, 5.8, 8.2, 9.9];
        let (_, _, r2) = linear_fit(&xs, &ys);
        assert!(r2 > 0.99 && r2 < 1.0);
    }

    #[test]
    fn loglog_slope_of_power_law() {
        let xs = [1.0, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
        assert!((loglog_slope(&xs, &ys) - 2.0).abs() < 1e-9);
        let inv: Vec<f64> = xs.iter().map(|x| 5.0 / x).collect();
        assert!((loglog_slope(&xs, &inv) + 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_summary_rejected() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_fit_rejected() {
        let _ = linear_fit(&[1.0, 1.0], &[2.0, 3.0]);
    }
}
