//! Aligned text tables for experiment output.
//!
//! The experiment binaries print paper-vs-measured tables; this is a small
//! fixed-width formatter with right-aligned numeric columns.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title line and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable items.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:>width$}", cells[i], width = widths[i]);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 significant-looking decimals (common case in the
/// experiment tables).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["n", "skew"]);
        t.row(&["8".into(), "1.25".into()]);
        t.row(&["128".into(), "20.5".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // title + header + rule + 2 rows
        assert_eq!(lines.len(), 5);
        // right alignment: the "8" row should have leading spaces.
        assert!(lines[3].starts_with("  8"), "got {:?}", lines[3]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
    }
}
