//! Static topology generators.
//!
//! Everything returns plain edge lists; wrap them in
//! [`TopologySchedule::static_graph`](crate::schedule::TopologySchedule) or
//! feed them to the churn builders. The star of this module is
//! [`TwoChain`], the lower-bound network of the paper's Theorem 4.1
//! (Figure 1): two parallel chains between `w0` and `wn`.

use crate::ids::{node, Edge, NodeId};
use rand::Rng;

/// Path `0 − 1 − … − (n−1)`.
pub fn path(n: usize) -> Vec<Edge> {
    assert!(n >= 2, "path needs >= 2 nodes");
    (0..n - 1).map(|i| Edge::between(i, i + 1)).collect()
}

/// Cycle `0 − 1 − … − (n−1) − 0`.
pub fn ring(n: usize) -> Vec<Edge> {
    assert!(n >= 3, "ring needs >= 3 nodes");
    let mut edges = path(n);
    edges.push(Edge::between(n - 1, 0));
    edges
}

/// Star with hub `hub` over `n` nodes.
pub fn star(n: usize, hub: usize) -> Vec<Edge> {
    assert!(n >= 2 && hub < n);
    (0..n)
        .filter(|&i| i != hub)
        .map(|i| Edge::between(hub, i))
        .collect()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Vec<Edge> {
    assert!(n >= 2);
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            edges.push(Edge::between(i, j));
        }
    }
    edges
}

/// `rows × cols` grid, node `(r, c)` is index `r*cols + c`.
pub fn grid(rows: usize, cols: usize) -> Vec<Edge> {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                edges.push(Edge::between(i, i + 1));
            }
            if r + 1 < rows {
                edges.push(Edge::between(i, i + cols));
            }
        }
    }
    edges
}

/// Complete binary tree over `n` nodes (node `i` has children `2i+1`,
/// `2i+2`).
pub fn binary_tree(n: usize) -> Vec<Edge> {
    assert!(n >= 2);
    (1..n).map(|i| Edge::between(i, (i - 1) / 2)).collect()
}

/// Erdős–Rényi `G(n, p)`, with a spanning path overlaid to guarantee
/// connectivity (the paper's model requires interval connectivity, so a
/// disconnected sample would be outside the model).
pub fn gnp_connected<R: Rng>(n: usize, p: f64, rng: &mut R) -> Vec<Edge> {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut edges: Vec<Edge> = path(n);
    for i in 0..n {
        for j in i + 1..n {
            if j != i + 1 && rng.gen_bool(p) {
                edges.push(Edge::between(i, j));
            }
        }
    }
    edges.sort();
    edges.dedup();
    edges
}

/// Random geometric graph: nodes at the given unit-square positions, edges
/// between pairs within `radius`.
pub fn geometric(positions: &[(f64, f64)], radius: f64) -> Vec<Edge> {
    assert!(radius > 0.0);
    let r2 = radius * radius;
    let mut edges = Vec::new();
    for i in 0..positions.len() {
        for j in i + 1..positions.len() {
            let dx = positions[i].0 - positions[j].0;
            let dy = positions[i].1 - positions[j].1;
            if dx * dx + dy * dy <= r2 {
                edges.push(Edge::between(i, j));
            }
        }
    }
    edges
}

/// Random geometric graph via a uniform grid ("cell lists"): same edge
/// set as [`geometric`], but `O(n + m)` expected instead of `O(n²)` for
/// radii in the sparse regime — the difference between minutes and
/// milliseconds per mobility sample at `n = 2^17`.
///
/// Cell side is `≥ radius` (at most `⌊1/radius⌋` cells per axis, capped
/// near `√n` so the grid never dominates memory), so every neighbor of a
/// node lies in its own or an adjacent cell.
pub fn geometric_grid(positions: &[(f64, f64)], radius: f64) -> Vec<Edge> {
    assert!(radius > 0.0);
    let n = positions.len();
    let by_radius = (1.0 / radius).floor().max(1.0);
    let by_count = (n as f64).sqrt().ceil().max(1.0);
    let cells = by_radius.min(by_count) as usize;
    if cells <= 2 {
        return geometric(positions, radius);
    }
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in positions.iter().enumerate() {
        buckets[cell_of(y) * cells + cell_of(x)].push(i as u32);
    }
    let r2 = radius * radius;
    let mut edges = Vec::new();
    for (i, &(x, y)) in positions.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        for ny in cy.saturating_sub(1)..=(cy + 1).min(cells - 1) {
            for nx in cx.saturating_sub(1)..=(cx + 1).min(cells - 1) {
                for &j in &buckets[ny * cells + nx] {
                    let j = j as usize;
                    if j <= i {
                        continue;
                    }
                    let dx = x - positions[j].0;
                    let dy = y - positions[j].1;
                    if dx * dx + dy * dy <= r2 {
                        edges.push(Edge::between(i, j));
                    }
                }
            }
        }
    }
    edges
}

/// Uniformly random unit-square positions for `n` nodes.
pub fn random_positions<R: Rng>(n: usize, rng: &mut R) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect()
}

/// The two-chain lower-bound network of Theorem 4.1 (Figure 1).
///
/// Nodes `w0` and `wn` are connected by two disjoint chains:
/// * chain A through `⌊n/2⌋ − 1` interior nodes,
/// * chain B through `⌈n/2⌉ − 1` interior nodes,
///
/// for `n` nodes total. The struct exposes the node-naming scheme used in
/// the proof (`⟨i, A⟩`, `⟨i, B⟩`) and the designated nodes
/// `u = ⟨⌈k⌉, A⟩`, `v = ⟨⌊n/2 − k⌋, A⟩`.
#[derive(Clone, Debug)]
pub struct TwoChain {
    /// Total number of nodes `n`.
    pub n: usize,
    /// Number of interior nodes on chain A (`⌊n/2⌋ − 1`).
    pub a_len: usize,
    /// Number of interior nodes on chain B (`⌈n/2⌉ − 1`).
    pub b_len: usize,
}

impl TwoChain {
    /// Builds the naming scheme for `n ≥ 6` nodes.
    pub fn new(n: usize) -> Self {
        assert!(n >= 6, "two-chain construction needs n >= 6");
        TwoChain {
            n,
            a_len: n / 2 - 1,
            b_len: n.div_ceil(2) - 1,
        }
    }

    /// `w0`, shared left endpoint (index 0).
    pub fn w0(&self) -> NodeId {
        node(0)
    }

    /// `wn`, shared right endpoint (index 1).
    pub fn wn(&self) -> NodeId {
        node(1)
    }

    /// `⟨i, A⟩` for `i ∈ {0, …, ⌊n/2⌋}`; `⟨0,A⟩ = w0`, `⟨⌊n/2⌋,A⟩ = wn`.
    pub fn a(&self, i: usize) -> NodeId {
        assert!(i <= self.a_len + 1, "A-chain index {i} out of range");
        if i == 0 {
            self.w0()
        } else if i == self.a_len + 1 {
            self.wn()
        } else {
            node(1 + i) // interior A nodes occupy indices 2..=a_len+1
        }
    }

    /// `⟨i, B⟩` for `i ∈ {0, …, ⌈n/2⌉}`; `⟨0,B⟩ = w0`, `⟨⌈n/2⌉,B⟩ = wn`.
    pub fn b(&self, i: usize) -> NodeId {
        assert!(i <= self.b_len + 1, "B-chain index {i} out of range");
        if i == 0 {
            self.w0()
        } else if i == self.b_len + 1 {
            self.wn()
        } else {
            node(1 + self.a_len + i)
        }
    }

    /// All nodes of chain A in order, `w0` to `wn`.
    pub fn a_chain(&self) -> Vec<NodeId> {
        (0..=self.a_len + 1).map(|i| self.a(i)).collect()
    }

    /// All nodes of chain B in order, `w0` to `wn`.
    pub fn b_chain(&self) -> Vec<NodeId> {
        (0..=self.b_len + 1).map(|i| self.b(i)).collect()
    }

    /// The full edge set of the two-chain network.
    pub fn edges(&self) -> Vec<Edge> {
        let mut edges = Vec::with_capacity(self.a_len + self.b_len + 2);
        let a = self.a_chain();
        for w in a.windows(2) {
            edges.push(Edge::new(w[0], w[1]));
        }
        let b = self.b_chain();
        for w in b.windows(2) {
            edges.push(Edge::new(w[0], w[1]));
        }
        edges
    }

    /// The proof's node `u = ⟨⌈k⌉, A⟩`.
    pub fn u(&self, k: f64) -> NodeId {
        self.a(k.ceil() as usize)
    }

    /// The proof's node `v = ⟨⌊n/2 − k⌋, A⟩`.
    pub fn v(&self, k: f64) -> NodeId {
        self.a((self.n as f64 / 2.0 - k).floor() as usize)
    }

    /// `E_block`: the edges of chain A within `k` hops of `w0` or of `wn` —
    /// the links the delay mask constrains.
    pub fn e_block(&self, k: f64) -> Vec<Edge> {
        let ku = k.ceil() as usize;
        let kv = (self.n as f64 / 2.0 - k).floor() as usize;
        let a = self.a_chain();
        let mut edges = Vec::new();
        for (i, w) in a.windows(2).enumerate() {
            // window i is the edge (a_i, a_{i+1})
            if i < ku || i >= kv {
                edges.push(Edge::new(w[0], w[1]));
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let e = path(5);
        assert_eq!(e.len(), 4);
        assert!(is_connected(5, e.iter().copied()));
    }

    #[test]
    fn ring_shape() {
        let e = ring(5);
        assert_eq!(e.len(), 5);
        assert!(is_connected(5, e.iter().copied()));
    }

    #[test]
    fn star_shape() {
        let e = star(6, 2);
        assert_eq!(e.len(), 5);
        assert!(e.iter().all(|edge| edge.touches(node(2))));
    }

    #[test]
    fn complete_shape() {
        assert_eq!(complete(5).len(), 10);
    }

    #[test]
    fn grid_shape() {
        let e = grid(3, 4);
        assert_eq!(e.len(), 3 * 3 + 2 * 4);
        assert!(is_connected(12, e.iter().copied()));
    }

    #[test]
    fn tree_shape() {
        let e = binary_tree(7);
        assert_eq!(e.len(), 6);
        assert!(is_connected(7, e.iter().copied()));
    }

    #[test]
    fn gnp_always_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let e = gnp_connected(20, 0.05, &mut rng);
            assert!(is_connected(20, e.iter().copied()));
        }
    }

    #[test]
    fn geometric_radius_cutoff() {
        let pos = vec![(0.0, 0.0), (0.05, 0.0), (0.5, 0.5)];
        let e = geometric(&pos, 0.1);
        assert_eq!(e, vec![Edge::between(0, 1)]);
    }

    #[test]
    fn geometric_grid_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(9);
        for &(n, r) in &[(40usize, 0.2f64), (120, 0.08), (300, 0.03), (10, 0.9)] {
            let pos = random_positions(n, &mut rng);
            let mut brute = geometric(&pos, r);
            let mut grid = geometric_grid(&pos, r);
            brute.sort();
            grid.sort();
            assert_eq!(brute, grid, "n={n} r={r}");
        }
    }

    #[test]
    fn two_chain_counts() {
        for n in [6, 7, 10, 13, 32] {
            let tc = TwoChain::new(n);
            // interior nodes: a_len + b_len = n - 2
            assert_eq!(tc.a_len + tc.b_len, n - 2);
            let edges = tc.edges();
            // a_len+1 edges on A, b_len+1 on B
            assert_eq!(edges.len(), n);
            assert!(is_connected(n, edges.iter().copied()));
        }
    }

    #[test]
    fn two_chain_endpoints_shared() {
        let tc = TwoChain::new(10);
        assert_eq!(tc.a(0), tc.b(0));
        assert_eq!(tc.a(tc.a_len + 1), tc.b(tc.b_len + 1));
        // all interior nodes distinct
        let mut all: Vec<NodeId> = tc.a_chain();
        all.extend(tc.b_chain());
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn two_chain_uv_distance() {
        let tc = TwoChain::new(32);
        let k = 2.0;
        let u = tc.u(k);
        let v = tc.v(k);
        assert_ne!(u, v);
        // u is at A-index ceil(k)=2, v at floor(16-2)=14: 12 hops apart
        let d = crate::distance::bfs_distance(32, tc.edges().iter().copied(), u);
        assert_eq!(d[v.index()], Some(12));
    }

    #[test]
    fn e_block_covers_prefix_and_suffix() {
        let tc = TwoChain::new(32);
        let blocked = tc.e_block(2.0);
        // prefix: 2 edges (indices 0,1), suffix: A has a_len+1 = 16 edges,
        // kv = 14, so edges 14,15 => 2 more
        assert_eq!(blocked.len(), 4);
    }

    #[test]
    fn random_positions_in_unit_square() {
        let mut rng = StdRng::seed_from_u64(5);
        for (x, y) in random_positions(50, &mut rng) {
            assert!((0.0..1.0).contains(&x) && (0.0..1.0).contains(&y));
        }
    }
}
