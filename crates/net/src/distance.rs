//! BFS distances, eccentricity, and diameter on static edge sets.
//!
//! The paper's lower bound reasons about hop distances in the *static*
//! graphs underlying its constructions (`dist(u, v)` in Section 3.1), so
//! plain BFS over an edge list is all we need.

use crate::ids::{Edge, NodeId};
use std::collections::VecDeque;

/// Adjacency lists from an edge list.
pub fn adjacency(n: usize, edges: impl IntoIterator<Item = Edge>) -> Vec<Vec<NodeId>> {
    let mut adj = vec![Vec::new(); n];
    for e in edges {
        assert!(e.hi().index() < n, "edge {e:?} out of range for n={n}");
        adj[e.lo().index()].push(e.hi());
        adj[e.hi().index()].push(e.lo());
    }
    adj
}

/// Hop distances from `src` to every node; `None` for unreachable nodes.
pub fn bfs_distance(
    n: usize,
    edges: impl IntoIterator<Item = Edge>,
    src: NodeId,
) -> Vec<Option<usize>> {
    bfs_on_adjacency(&adjacency(n, edges), src)
}

/// BFS over prebuilt adjacency lists.
pub fn bfs_on_adjacency(adj: &[Vec<NodeId>], src: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; adj.len()];
    let mut queue = VecDeque::new();
    dist[src.index()] = Some(0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for &w in &adj[u.index()] {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(du + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Distance between a specific pair, `None` if disconnected.
pub fn distance(
    n: usize,
    edges: impl IntoIterator<Item = Edge>,
    u: NodeId,
    v: NodeId,
) -> Option<usize> {
    bfs_distance(n, edges, u)[v.index()]
}

/// Eccentricity of `src` (max distance to any node); `None` if the graph is
/// disconnected from `src`.
pub fn eccentricity(adj: &[Vec<NodeId>], src: NodeId) -> Option<usize> {
    let dist = bfs_on_adjacency(adj, src);
    let mut ecc = 0;
    for d in dist {
        ecc = ecc.max(d?);
    }
    Some(ecc)
}

/// Diameter of the graph; `None` if disconnected.
pub fn diameter(n: usize, edges: impl IntoIterator<Item = Edge>) -> Option<usize> {
    let adj = adjacency(n, edges);
    let mut diam = 0;
    for i in 0..n {
        diam = diam.max(eccentricity(&adj, NodeId::from_index(i))?);
    }
    Some(diam)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::ids::node;

    #[test]
    fn path_distances() {
        let edges = generators::path(5);
        let d = bfs_distance(5, edges, node(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn path_diameter() {
        assert_eq!(diameter(6, generators::path(6)), Some(5));
    }

    #[test]
    fn ring_diameter() {
        assert_eq!(diameter(6, generators::ring(6)), Some(3));
        assert_eq!(diameter(7, generators::ring(7)), Some(3));
    }

    #[test]
    fn star_diameter() {
        assert_eq!(diameter(8, generators::star(8, 0)), Some(2));
    }

    #[test]
    fn complete_diameter() {
        assert_eq!(diameter(5, generators::complete(5)), Some(1));
    }

    #[test]
    fn grid_diameter() {
        assert_eq!(diameter(12, generators::grid(3, 4)), Some(5));
    }

    #[test]
    fn disconnected_returns_none() {
        let edges = vec![Edge::between(0, 1)];
        assert_eq!(distance(4, edges.clone(), node(0), node(3)), None);
        assert_eq!(diameter(4, edges), None);
    }

    #[test]
    fn pair_distance() {
        let edges = generators::ring(8);
        assert_eq!(distance(8, edges, node(0), node(4)), Some(4));
    }

    #[test]
    fn eccentricity_on_path() {
        let adj = adjacency(5, generators::path(5));
        assert_eq!(eccentricity(&adj, node(0)), Some(4));
        assert_eq!(eccentricity(&adj, node(2)), Some(2));
    }
}
