//! Node and edge identifiers.

use std::fmt;

/// A node in the static node set `V`. Nodes are numbered `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from an array index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Shorthand used pervasively in helper code and tests.
#[inline]
pub fn node(i: usize) -> NodeId {
    NodeId::from_index(i)
}

/// An *undirected* potential edge `{u, v} ∈ V⁽²⁾`, stored canonically with
/// the smaller endpoint first. Self-loops are rejected.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    a: NodeId,
    b: NodeId,
}

impl Edge {
    /// Canonical constructor; panics on self-loops.
    #[inline]
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loop edge {{{u:?},{u:?}}} is not allowed");
        if u < v {
            Edge { a: u, b: v }
        } else {
            Edge { a: v, b: u }
        }
    }

    /// Convenience constructor from indices.
    #[inline]
    pub fn between(i: usize, j: usize) -> Self {
        Edge::new(node(i), node(j))
    }

    /// The smaller endpoint.
    #[inline]
    pub fn lo(self) -> NodeId {
        self.a
    }

    /// The larger endpoint.
    #[inline]
    pub fn hi(self) -> NodeId {
        self.b
    }

    /// Both endpoints, smaller first.
    #[inline]
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// True if `w` is one of the endpoints.
    #[inline]
    pub fn touches(self, w: NodeId) -> bool {
        self.a == w || self.b == w
    }

    /// The endpoint that is not `w`; panics if `w` is not an endpoint.
    #[inline]
    pub fn other(self, w: NodeId) -> NodeId {
        if self.a == w {
            self.b
        } else if self.b == w {
            self.a
        } else {
            panic!("{w:?} is not an endpoint of {self:?}")
        }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{:?},{:?}}}", self.a, self.b)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_canonical() {
        assert_eq!(Edge::between(3, 1), Edge::between(1, 3));
        assert_eq!(Edge::between(3, 1).lo(), node(1));
        assert_eq!(Edge::between(3, 1).hi(), node(3));
    }

    #[test]
    fn edge_endpoints_and_other() {
        let e = Edge::between(2, 5);
        assert_eq!(e.endpoints(), (node(2), node(5)));
        assert_eq!(e.other(node(2)), node(5));
        assert_eq!(e.other(node(5)), node(2));
        assert!(e.touches(node(2)));
        assert!(!e.touches(node(3)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = Edge::between(4, 4);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_rejects_non_endpoint() {
        let _ = Edge::between(1, 2).other(node(3));
    }

    #[test]
    fn node_roundtrip() {
        assert_eq!(node(7).index(), 7);
        assert_eq!(NodeId::from_index(7), NodeId(7));
        assert_eq!(format!("{}", node(7)), "n7");
        assert_eq!(format!("{}", Edge::between(0, 1)), "{n0,n1}");
    }
}
