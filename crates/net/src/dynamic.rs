//! Replayable dynamic-graph state.
//!
//! [`DynamicGraph`] is the *live* view the simulator maintains while
//! replaying a [`TopologySchedule`]: current adjacency plus the full
//! presence history of every edge ever seen, which supports the
//! `exists_throughout` queries used by analysis and invariant checking.

use crate::ids::{Edge, NodeId};
use crate::schedule::{TopologyEventKind, TopologySchedule};
use gcs_clocks::Time;
use std::collections::{BTreeMap, BTreeSet};

/// One presence interval of an edge: `[added, removed)` where `removed` is
/// `None` while the edge is still up.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PresenceInterval {
    /// When the edge (re)appeared.
    pub added: Time,
    /// When it was removed, if it has been.
    pub removed: Option<Time>,
}

/// Live dynamic-graph state with (optional) history.
#[derive(Clone, Debug)]
pub struct DynamicGraph {
    n: usize,
    adjacency: Vec<BTreeSet<NodeId>>,
    present: BTreeSet<Edge>,
    history: BTreeMap<Edge, Vec<PresenceInterval>>,
    /// Whether presence intervals are recorded. History costs `O(total
    /// events)` memory over a run — the streaming engine disables it by
    /// default so peak memory stays independent of the churn volume.
    retain_history: bool,
    now: Time,
}

impl DynamicGraph {
    /// A graph over `n` isolated nodes at time 0 (history retained).
    pub fn empty(n: usize) -> Self {
        DynamicGraph {
            n,
            adjacency: vec![BTreeSet::new(); n],
            present: BTreeSet::new(),
            history: BTreeMap::new(),
            retain_history: true,
            now: Time::ZERO,
        }
    }

    /// Enables or disables presence-history recording. Disabling clears
    /// any history already accumulated; while disabled,
    /// [`history`](Self::history) returns empty slices and
    /// [`existed_throughout`](Self::existed_throughout) /
    /// [`up_since`](Self::up_since) cannot answer.
    pub fn set_retain_history(&mut self, retain: bool) {
        self.retain_history = retain;
        if !retain {
            self.history.clear();
        }
    }

    /// Whether presence history is being recorded.
    pub fn retains_history(&self) -> bool {
        self.retain_history
    }

    /// Approximate heap bytes of the live adjacency, presence set and
    /// retained history (the topology plane's memory meter). B-tree node
    /// overhead is not observable from outside `std`, so set and map
    /// entries are counted at payload size.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let degree_total: usize = self.adjacency.iter().map(|s| s.len()).sum();
        self.adjacency.capacity() * size_of::<BTreeSet<NodeId>>()
            + degree_total * size_of::<NodeId>()
            + self.present.len() * size_of::<Edge>()
            + self
                .history
                .values()
                .map(|v| {
                    size_of::<Edge>()
                        + size_of::<Vec<PresenceInterval>>()
                        + v.capacity() * size_of::<PresenceInterval>()
                })
                .sum::<usize>()
    }

    /// A graph initialized with `E₀` at time 0.
    pub fn with_initial(n: usize, edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut g = Self::empty(n);
        for e in edges {
            g.add_edge(e, Time::ZERO);
        }
        g
    }

    /// Initializes from a schedule's initial edge set (events not applied).
    pub fn from_schedule_initial(schedule: &TopologySchedule) -> Self {
        Self::with_initial(schedule.n(), schedule.initial_edges())
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The latest time an event was applied.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Applies a link formation at time `t`.
    pub fn add_edge(&mut self, e: Edge, t: Time) {
        assert!(t >= self.now, "events must be applied in time order");
        assert!(
            e.hi().index() < self.n,
            "edge {e:?} out of range for n={}",
            self.n
        );
        assert!(
            self.present.insert(e),
            "edge {e:?} already present at {t:?}"
        );
        self.adjacency[e.lo().index()].insert(e.hi());
        self.adjacency[e.hi().index()].insert(e.lo());
        if self.retain_history {
            self.history.entry(e).or_default().push(PresenceInterval {
                added: t,
                removed: None,
            });
        }
        self.now = t;
    }

    /// Applies a link failure at time `t`.
    pub fn remove_edge(&mut self, e: Edge, t: Time) {
        assert!(t >= self.now, "events must be applied in time order");
        assert!(self.present.remove(&e), "edge {e:?} not present at {t:?}");
        self.adjacency[e.lo().index()].remove(&e.hi());
        self.adjacency[e.hi().index()].remove(&e.lo());
        if self.retain_history {
            let intervals = self
                .history
                .get_mut(&e)
                .expect("present edge must have history");
            let last = intervals.last_mut().expect("present edge has an interval");
            debug_assert!(last.removed.is_none());
            last.removed = Some(t);
        }
        self.now = t;
    }

    /// Applies one schedule event.
    pub fn apply(&mut self, kind: TopologyEventKind, e: Edge, t: Time) {
        match kind {
            TopologyEventKind::Add => self.add_edge(e, t),
            TopologyEventKind::Remove => self.remove_edge(e, t),
        }
    }

    /// True if `e` is currently up.
    pub fn contains(&self, e: Edge) -> bool {
        self.present.contains(&e)
    }

    /// Current neighbors of `u`.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency[u.index()].iter().copied()
    }

    /// Current degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency[u.index()].len()
    }

    /// All edges currently up.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.present.iter().copied()
    }

    /// Number of edges currently up.
    pub fn edge_count(&self) -> usize {
        self.present.len()
    }

    /// Presence history of an edge (empty slice if never seen).
    pub fn history(&self, e: Edge) -> &[PresenceInterval] {
        self.history.get(&e).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if `e` was present at `t1` and not removed during `[t1, t2]`
    /// (the paper's "exists throughout" predicate, evaluated on history).
    pub fn existed_throughout(&self, e: Edge, t1: Time, t2: Time) -> bool {
        assert!(t1 <= t2 && t2 <= self.now, "interval must lie in the past");
        self.history(e).iter().any(|iv| {
            iv.added <= t1
                && match iv.removed {
                    None => true,
                    Some(r) => r > t2,
                }
        })
    }

    /// The time the current presence interval of `e` began, if `e` is up.
    pub fn up_since(&self, e: Edge) -> Option<Time> {
        if !self.contains(e) {
            return None;
        }
        self.history(e).last().map(|iv| iv.added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::node;
    use gcs_clocks::time::at;

    fn e(i: usize, j: usize) -> Edge {
        Edge::between(i, j)
    }

    #[test]
    fn adjacency_tracks_add_remove() {
        let mut g = DynamicGraph::empty(3);
        g.add_edge(e(0, 1), at(1.0));
        g.add_edge(e(1, 2), at(2.0));
        assert_eq!(g.degree(node(1)), 2);
        assert!(g.contains(e(0, 1)));
        g.remove_edge(e(0, 1), at(3.0));
        assert_eq!(g.degree(node(1)), 1);
        assert!(!g.contains(e(0, 1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn history_records_intervals() {
        let mut g = DynamicGraph::empty(2);
        g.add_edge(e(0, 1), at(1.0));
        g.remove_edge(e(0, 1), at(5.0));
        g.add_edge(e(0, 1), at(8.0));
        let h = g.history(e(0, 1));
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].added, at(1.0));
        assert_eq!(h[0].removed, Some(at(5.0)));
        assert_eq!(h[1].added, at(8.0));
        assert_eq!(h[1].removed, None);
        assert_eq!(g.up_since(e(0, 1)), Some(at(8.0)));
    }

    #[test]
    fn existed_throughout_queries_history() {
        let mut g = DynamicGraph::empty(2);
        g.add_edge(e(0, 1), at(1.0));
        g.remove_edge(e(0, 1), at(5.0));
        g.add_edge(e(0, 1), at(8.0));
        // advance `now` so queries up to 10 are legal
        g.remove_edge(e(0, 1), at(10.0));
        assert!(g.existed_throughout(e(0, 1), at(1.0), at(4.9)));
        assert!(!g.existed_throughout(e(0, 1), at(1.0), at(5.0)));
        assert!(!g.existed_throughout(e(0, 1), at(6.0), at(7.0)));
        assert!(g.existed_throughout(e(0, 1), at(8.0), at(9.9)));
        assert!(!g.existed_throughout(e(0, 1), at(8.0), at(10.0)));
    }

    #[test]
    fn with_initial_sets_time_zero_edges() {
        let g = DynamicGraph::with_initial(3, [e(0, 1), e(1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.up_since(e(0, 1)), Some(Time::ZERO));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_events_rejected() {
        let mut g = DynamicGraph::empty(2);
        g.add_edge(e(0, 1), at(5.0));
        g.remove_edge(e(0, 1), at(3.0));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_add_rejected() {
        let mut g = DynamicGraph::empty(2);
        g.add_edge(e(0, 1), at(1.0));
        g.add_edge(e(0, 1), at(2.0));
    }

    #[test]
    fn history_retention_can_be_disabled() {
        let mut g = DynamicGraph::empty(2);
        g.set_retain_history(false);
        assert!(!g.retains_history());
        g.add_edge(e(0, 1), at(1.0));
        g.remove_edge(e(0, 1), at(5.0));
        g.add_edge(e(0, 1), at(8.0));
        // Live state is fully tracked; history is not.
        assert!(g.contains(e(0, 1)));
        assert_eq!(g.degree(node(0)), 1);
        assert!(g.history(e(0, 1)).is_empty());
        assert_eq!(g.up_since(e(0, 1)), None);
    }

    #[test]
    fn neighbors_iterates_current_set() {
        let mut g = DynamicGraph::empty(4);
        g.add_edge(e(0, 1), at(1.0));
        g.add_edge(e(0, 2), at(1.0));
        g.add_edge(e(0, 3), at(1.0));
        let nbrs: Vec<NodeId> = g.neighbors(node(0)).collect();
        assert_eq!(nbrs, vec![node(1), node(2), node(3)]);
    }
}
