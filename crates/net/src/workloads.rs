//! Lazy dynamic-workload generators: the scenario shapes behind the E12
//! experiment family.
//!
//! Each type here implements [`TopologySource`] and generates its events
//! **on demand** with state independent of the horizon (positions,
//! per-wave RNG streams, cycle counters) — never a materialized event
//! log. All three keep a static path backbone, so the schedules remain
//! connected at every instant regardless of how the dynamic layer
//! behaves; drop the backbone parameters to step outside the paper's
//! T-interval-connectivity envelope deliberately.
//!
//! * [`MobilitySource`] — random-waypoint motion over the unit square
//!   with a geometric connectivity radius (grid-accelerated neighbor
//!   search, see [`generators::geometric_grid`]), sampled every
//!   `sample_dt`.
//! * [`PartitionSource`] — periodic partition-and-heal: every `period`,
//!   a set of evenly spaced backbone edges fails simultaneously
//!   (splitting the path into islands) and heals `outage` later.
//! * [`FlashCrowdSource`] — flash-crowd join/leave waves: every
//!   `period`, a crowd of nodes attaches to a rotating hub over a short
//!   arrival ramp and detaches `dwell` later.

use crate::generators;
use crate::ids::{node, Edge, NodeId};
use crate::schedule::{TopologyEvent, TopologyEventKind};
use crate::source::TopologySource;
use gcs_clocks::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, VecDeque};

fn ev(t: Time, kind: TopologyEventKind, edge: Edge) -> TopologyEvent {
    TopologyEvent {
        time: t,
        kind,
        edge,
    }
}

/// Random-waypoint mobility over the unit square, generated lazily.
///
/// Every `sample_dt` each node advances toward its waypoint at `speed`
/// (re-picking a waypoint on arrival); connectivity is the geometric
/// graph with the given `radius`, unioned with a static path backbone.
/// Edge diffs between consecutive samples become add/remove events at
/// the sample instant, emitted in `(time, edge)` order. State is the
/// positions, waypoints and current edge set — `O(n + m)`, independent
/// of the horizon.
#[derive(Debug)]
pub struct MobilitySource {
    n: usize,
    radius: f64,
    speed: f64,
    sample_dt: f64,
    horizon: f64,
    rng: StdRng,
    pos: Vec<(f64, f64)>,
    waypoint: Vec<(f64, f64)>,
    backbone: BTreeSet<Edge>,
    current: BTreeSet<Edge>,
    next_sample: f64,
    pending: VecDeque<TopologyEvent>,
    initial: Vec<Edge>,
}

impl MobilitySource {
    /// Builds the source. `backbone` overlays a static path so the graph
    /// stays connected regardless of geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        radius: f64,
        speed: f64,
        sample_dt: f64,
        horizon: f64,
        backbone: bool,
        seed: u64,
    ) -> Self {
        assert!(n >= 2 && radius > 0.0 && speed > 0.0 && sample_dt > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let pos = generators::random_positions(n, &mut rng);
        let waypoint = generators::random_positions(n, &mut rng);
        let backbone: BTreeSet<Edge> = if backbone {
            generators::path(n).into_iter().collect()
        } else {
            BTreeSet::new()
        };
        let mut current: BTreeSet<Edge> = generators::geometric_grid(&pos, radius)
            .into_iter()
            .collect();
        current.extend(backbone.iter().copied());
        let initial: Vec<Edge> = current.iter().copied().collect();
        MobilitySource {
            n,
            radius,
            speed,
            sample_dt,
            horizon,
            rng,
            pos,
            waypoint,
            backbone,
            current,
            next_sample: sample_dt,
            pending: VecDeque::new(),
            initial,
        }
    }

    /// Advances the world by one sample and queues the edge diffs.
    fn advance_sample(&mut self) {
        let t = Time::new(self.next_sample);
        let step = self.speed * self.sample_dt;
        for i in 0..self.n {
            let (px, py) = self.pos[i];
            let (wx, wy) = self.waypoint[i];
            let (dx, dy) = (wx - px, wy - py);
            let d = (dx * dx + dy * dy).sqrt();
            if d <= step {
                self.pos[i] = (wx, wy);
                self.waypoint[i] = (self.rng.gen_range(0.0..1.0), self.rng.gen_range(0.0..1.0));
            } else {
                self.pos[i] = (px + dx / d * step, py + dy / d * step);
            }
        }
        let mut next: BTreeSet<Edge> = generators::geometric_grid(&self.pos, self.radius)
            .into_iter()
            .collect();
        next.extend(self.backbone.iter().copied());
        // `symmetric_difference` iterates ascending by edge, giving the
        // canonical (time, edge) emission order within the instant.
        for &e in self.current.symmetric_difference(&next) {
            let kind = if next.contains(&e) {
                TopologyEventKind::Add
            } else {
                TopologyEventKind::Remove
            };
            self.pending.push_back(ev(t, kind, e));
        }
        self.current = next;
        self.next_sample += self.sample_dt;
    }

    /// Ensures the pending buffer is non-empty or the horizon is spent.
    fn refill(&mut self) {
        while self.pending.is_empty() && self.next_sample <= self.horizon {
            self.advance_sample();
        }
    }
}

impl TopologySource for MobilitySource {
    fn n(&self) -> usize {
        self.n
    }

    fn initial_edges(&mut self) -> Vec<Edge> {
        std::mem::take(&mut self.initial)
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.refill();
        self.pending.front().map(|e| e.time)
    }

    fn pull_until(&mut self, until: Time, buf: &mut Vec<TopologyEvent>) {
        loop {
            self.refill();
            match self.pending.front() {
                Some(e) if e.time <= until => {
                    buf.push(self.pending.pop_front().expect("peeked"));
                }
                _ => break,
            }
        }
    }
}

/// Periodic partition-and-heal over a path backbone.
///
/// Every `period` (starting at `t = period`), the `cuts` evenly spaced
/// backbone edges fail simultaneously — splitting the path into
/// `cuts + 1` islands — and heal `outage` later. Because a path loses
/// connectivity with *any* edge down, every T-window overlapping an
/// outage is disconnected: this family deliberately steps outside
/// Definition 3.1's envelope to measure re-convergence after heals.
/// State is a cycle counter.
#[derive(Debug)]
pub struct PartitionSource {
    n: usize,
    period: f64,
    outage: f64,
    horizon: f64,
    cut_edges: Vec<Edge>,
    /// Next cycle to emit (cycle `k ≥ 1` cuts at `k·period`).
    cycle: u64,
    pending: VecDeque<TopologyEvent>,
    initial: Vec<Edge>,
}

impl PartitionSource {
    /// Builds the source; `cuts ≥ 1` edges are removed per cycle.
    pub fn new(n: usize, cuts: usize, period: f64, outage: f64, horizon: f64) -> Self {
        assert!(n >= 4, "partition workload needs n >= 4");
        assert!(cuts >= 1 && cuts < n - 1, "cuts out of range");
        assert!(period > outage && outage > 0.0);
        let initial = generators::path(n);
        // Evenly spaced cut points along the path, deduplicated.
        let cut_edges: Vec<Edge> = {
            let set: BTreeSet<usize> = (1..=cuts)
                .map(|i| (i * (n - 1) / (cuts + 1)).clamp(0, n - 2))
                .collect();
            set.into_iter().map(|i| Edge::between(i, i + 1)).collect()
        };
        PartitionSource {
            n,
            period,
            outage,
            horizon,
            cut_edges,
            cycle: 1,
            pending: VecDeque::new(),
            initial,
        }
    }

    /// The edges that fail each cycle (ascending).
    pub fn cut_edges(&self) -> &[Edge] {
        &self.cut_edges
    }

    fn refill(&mut self) {
        while self.pending.is_empty() {
            let down = self.cycle as f64 * self.period;
            // Mirror `staggered_ring`: only emit complete down/up pairs.
            if down + self.outage > self.horizon {
                return;
            }
            for &e in &self.cut_edges {
                self.pending
                    .push_back(ev(Time::new(down), TopologyEventKind::Remove, e));
            }
            for &e in &self.cut_edges {
                self.pending.push_back(ev(
                    Time::new(down + self.outage),
                    TopologyEventKind::Add,
                    e,
                ));
            }
            self.cycle += 1;
        }
    }
}

impl TopologySource for PartitionSource {
    fn n(&self) -> usize {
        self.n
    }

    fn initial_edges(&mut self) -> Vec<Edge> {
        std::mem::take(&mut self.initial)
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.refill();
        self.pending.front().map(|e| e.time)
    }

    fn pull_until(&mut self, until: Time, buf: &mut Vec<TopologyEvent>) {
        loop {
            self.refill();
            match self.pending.front() {
                Some(e) if e.time <= until => {
                    buf.push(self.pending.pop_front().expect("peeked"));
                }
                _ => break,
            }
        }
    }
}

/// Flash-crowd join/leave waves over a path backbone.
///
/// Wave `k` starts at `(k + 1) · period` and targets hub
/// `hub(k mod hubs)`: `wave_size` distinct crowd nodes each form an edge
/// to the hub at an arrival time uniform in the wave's `ramp`, and drop
/// it `dwell` after arriving. `ramp + dwell < period` is enforced so
/// consecutive waves never overlap and every add applies to an absent
/// edge. State is one wave's worth of buffered events plus a per-wave
/// RNG stream — `O(wave_size)`, independent of the horizon.
#[derive(Debug)]
pub struct FlashCrowdSource {
    n: usize,
    seed: u64,
    hubs: Vec<NodeId>,
    wave_size: usize,
    period: f64,
    ramp: f64,
    dwell: f64,
    horizon: f64,
    /// Hub ids plus their backbone neighbors — never sampled as crowd.
    excluded: BTreeSet<NodeId>,
    wave: u64,
    pending: VecDeque<TopologyEvent>,
    initial: Vec<Edge>,
}

impl FlashCrowdSource {
    /// Builds the source with `hubs` evenly spaced hub nodes.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        hubs: usize,
        wave_size: usize,
        period: f64,
        ramp: f64,
        dwell: f64,
        horizon: f64,
        seed: u64,
    ) -> Self {
        assert!(n >= 8, "flash-crowd workload needs n >= 8");
        assert!(hubs >= 1 && hubs * 4 <= n, "too many hubs for n");
        assert!(period > 0.0 && ramp > 0.0 && dwell > 0.0);
        assert!(
            ramp + dwell < period,
            "waves must not overlap: ramp + dwell < period"
        );
        assert!(wave_size >= 1);
        let hub_ids: Vec<NodeId> = {
            let set: BTreeSet<usize> = (0..hubs).map(|h| h * n / hubs).collect();
            set.into_iter().map(node).collect()
        };
        let mut excluded = BTreeSet::new();
        for &h in &hub_ids {
            let i = h.index();
            excluded.insert(h);
            if i > 0 {
                excluded.insert(node(i - 1));
            }
            if i + 1 < n {
                excluded.insert(node(i + 1));
            }
        }
        let wave_size = wave_size.min(n - excluded.len());
        FlashCrowdSource {
            n,
            seed,
            hubs: hub_ids,
            wave_size,
            period,
            ramp,
            dwell,
            horizon,
            excluded,
            wave: 0,
            pending: VecDeque::new(),
            initial: generators::path(n),
        }
    }

    /// Generates one wave's events (sorted by `(time, edge)`).
    fn refill(&mut self) {
        while self.pending.is_empty() {
            let start = (self.wave as f64 + 1.0) * self.period;
            if start + self.ramp + self.dwell > self.horizon {
                return;
            }
            let hub = self.hubs[(self.wave % self.hubs.len() as u64) as usize];
            let mut rng = StdRng::seed_from_u64(
                self.seed
                    ^ 0x1F83_D9AB_FB41_BD6B
                    ^ (self.wave + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut crowd = BTreeSet::new();
            let mut guard = 0;
            while crowd.len() < self.wave_size {
                guard += 1;
                if guard > 100 * self.wave_size + 1000 {
                    break; // tiny n: accept a smaller crowd
                }
                let v = node(rng.gen_range(0..self.n));
                if !self.excluded.contains(&v) {
                    crowd.insert(v);
                }
            }
            let mut events: Vec<TopologyEvent> = Vec::with_capacity(2 * crowd.len());
            for v in crowd {
                let arrival = start + rng.gen_range(0.0..self.ramp);
                let e = Edge::new(v, hub);
                events.push(ev(Time::new(arrival), TopologyEventKind::Add, e));
                events.push(ev(
                    Time::new(arrival + self.dwell),
                    TopologyEventKind::Remove,
                    e,
                ));
            }
            events.sort_by(|a, b| a.time.cmp(&b.time).then(a.edge.cmp(&b.edge)));
            self.pending.extend(events);
            self.wave += 1;
        }
    }
}

impl TopologySource for FlashCrowdSource {
    fn n(&self) -> usize {
        self.n
    }

    fn initial_edges(&mut self) -> Vec<Edge> {
        std::mem::take(&mut self.initial)
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.refill();
        self.pending.front().map(|e| e.time)
    }

    fn pull_until(&mut self, until: Time, buf: &mut Vec<TopologyEvent>) {
        loop {
            self.refill();
            match self.pending.front() {
                Some(e) if e.time <= until => {
                    buf.push(self.pending.pop_front().expect("peeked"));
                }
                _ => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{is_connected, is_interval_connected};
    use crate::source::collect_schedule;
    use gcs_clocks::time::{at, secs};

    #[test]
    fn mobility_source_collects_to_valid_schedule_and_churns() {
        let src = MobilitySource::new(24, 0.25, 0.08, 1.0, 40.0, true, 5);
        let sched = collect_schedule(src);
        assert!(!sched.events().is_empty(), "mobility must produce churn");
        // Backbone keeps every instantaneous graph connected.
        assert!(is_interval_connected(&sched, secs(1.0), at(40.0)));
    }

    #[test]
    fn mobility_source_is_deterministic_per_seed() {
        let mk = |seed| collect_schedule(MobilitySource::new(16, 0.3, 0.1, 1.0, 25.0, true, seed));
        assert_eq!(mk(3), mk(3));
        assert_ne!(mk(3), mk(4));
    }

    #[test]
    fn partition_source_cuts_and_heals() {
        let src = PartitionSource::new(16, 3, 5.0, 1.0, 52.0);
        assert_eq!(src.cut_edges().len(), 3);
        let sched = collect_schedule(PartitionSource::new(16, 3, 5.0, 1.0, 52.0));
        // 10 full cycles fit in [5, 51]: 3 removes + 3 adds each.
        assert_eq!(sched.events().len(), 10 * 6);
        // Mid-outage the path is split into 4 islands.
        assert!(!is_connected(16, sched.edges_at(at(5.5)).iter().copied()));
        // Healed again after the outage.
        assert!(is_connected(16, sched.edges_at(at(6.5)).iter().copied()));
        // A path loses connectivity with any edge down, so windows that
        // overlap an outage are disconnected — this family is deliberately
        // outside Definition 3.1's envelope.
        assert!(!is_interval_connected(&sched, secs(2.0), at(52.0)));
    }

    #[test]
    fn flash_crowd_source_waves_join_and_leave() {
        let sched = collect_schedule(FlashCrowdSource::new(64, 4, 8, 10.0, 2.0, 4.0, 65.0, 9));
        let adds = sched
            .events()
            .iter()
            .filter(|e| e.kind == TopologyEventKind::Add)
            .count();
        let removes = sched.events().len() - adds;
        assert_eq!(adds, removes, "every join leaves again");
        // Wave starts 10, 20, 30, 40, 50 all fit start + ramp + dwell ≤ 65.
        assert!(adds >= 5 * 8, "expected ≥ 5 full waves of 8, got {adds}");
        // Mid-wave the hub degree spikes above its backbone degree of 2.
        let mid_wave = sched
            .edges_at(at(12.5))
            .iter()
            .filter(|e| {
                e.touches(node(0))
                    || e.touches(node(16))
                    || e.touches(node(32))
                    || e.touches(node(48))
            })
            .count();
        assert!(mid_wave > 4, "crowd edges present mid-wave: {mid_wave}");
        // Backbone is static: always connected.
        assert!(is_interval_connected(&sched, secs(5.0), at(65.0)));
    }

    #[test]
    fn flash_crowd_is_deterministic_per_seed() {
        let mk =
            |seed| collect_schedule(FlashCrowdSource::new(32, 2, 5, 8.0, 1.0, 3.0, 40.0, seed));
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }
}
