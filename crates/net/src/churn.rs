//! Dynamic-topology generators (churn models).
//!
//! Each builder returns a validated [`TopologySchedule`]. The paper's model
//! permits *arbitrary* edge churn subject to T-interval connectivity
//! (Definition 3.1), so these builders are parameterized to let callers
//! stay inside — or deliberately step outside — that envelope:
//!
//! * [`rotating_star`] — the canonical "always changing, never stable"
//!   dynamic graph: the star hub migrates every `period`, with `overlap`
//!   during which both stars coexist. Choosing `overlap ≥ T` keeps the
//!   schedule T-interval connected even though no single edge is long-lived.
//! * [`staggered_ring`] — ring whose edges take turns failing; with outage
//!   spacing `> T` the surviving graph in every T-window is a path.
//! * [`random_churn`] — static backbone plus randomly flapping chords.
//! * [`mobility`] — random-waypoint motion over the unit square with a
//!   geometric connectivity radius, sampled every `sample_dt`.

use crate::generators;
use crate::ids::{node, Edge};
use crate::schedule::{TopologyEvent, TopologyEventKind, TopologySchedule};
use crate::source::TopologySource;
use gcs_clocks::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

fn ev(t: f64, kind: TopologyEventKind, edge: Edge) -> TopologyEvent {
    TopologyEvent {
        time: Time::new(t),
        kind,
        edge,
    }
}

/// A star whose hub migrates: hub `k mod n` is active during
/// `[k·period − overlap, (k+1)·period)`, so consecutive stars overlap for
/// `overlap` seconds. With `overlap ≥ T + D` the schedule is
/// `(T+D)`-interval connected while every individual edge lives at most
/// `period + overlap`.
pub fn rotating_star(n: usize, period: f64, overlap: f64, horizon: f64) -> TopologySchedule {
    assert!(n >= 3, "rotating star needs n >= 3");
    assert!(period > 0.0 && overlap > 0.0 && overlap < period);
    let initial = generators::star(n, 0);
    let mut events = Vec::new();
    let mut k = 0usize;
    loop {
        let switch = (k + 1) as f64 * period;
        if switch - overlap > horizon {
            break;
        }
        let old_hub = k % n;
        let new_hub = (k + 1) % n;
        let t_add = switch - overlap;
        // Bring up the new star (skip edges already in the old star, i.e.
        // the {old_hub, new_hub} edge and, when hubs coincide, everything).
        for i in 0..n {
            if i == new_hub {
                continue;
            }
            let e = Edge::between(new_hub, i);
            if !e.touches(node(old_hub)) {
                events.push(ev(t_add, TopologyEventKind::Add, e));
            }
        }
        // Tear down the old star at the switch, keeping shared edges.
        for i in 0..n {
            if i == old_hub {
                continue;
            }
            let e = Edge::between(old_hub, i);
            if !e.touches(node(new_hub)) {
                events.push(ev(switch, TopologyEventKind::Remove, e));
            }
        }
        k += 1;
    }
    TopologySchedule::new(n, initial, events)
}

/// Ring over `n` nodes whose edges take turns failing. Edge `i` (the edge
/// between nodes `i` and `i+1 mod n`) is down during
/// `[start + i·spacing + r·n·spacing, … + downtime)` for every round `r`.
/// With `spacing ≥ downtime + T`, at most one ring edge is missing from any
/// `T`-window, so the schedule stays T-interval connected.
pub fn staggered_ring(
    n: usize,
    spacing: f64,
    downtime: f64,
    start: f64,
    horizon: f64,
) -> TopologySchedule {
    assert!(n >= 4, "staggered ring needs n >= 4");
    assert!(spacing > downtime && downtime > 0.0 && start > 0.0);
    let initial = generators::ring(n);
    let ring_edge = |i: usize| Edge::between(i, (i + 1) % n);
    let mut events = Vec::new();
    let mut t = start;
    let mut i = 0usize;
    while t + downtime <= horizon {
        events.push(ev(t, TopologyEventKind::Remove, ring_edge(i)));
        events.push(ev(t + downtime, TopologyEventKind::Add, ring_edge(i)));
        i = (i + 1) % n;
        t += spacing;
    }
    TopologySchedule::new(n, initial, events)
}

/// A static backbone (guaranteeing connectivity) plus up to `chords`
/// random extra edges that flap: each chord independently toggles with
/// up-times drawn from `[min_up, max_up]` and down-times from
/// `[min_down, max_down]`. Small graphs may not have `chords` edges
/// outside the backbone; the count is capped at what exists.
pub fn random_churn<R: Rng>(
    n: usize,
    backbone: Vec<Edge>,
    chords: usize,
    up_range: (f64, f64),
    down_range: (f64, f64),
    horizon: f64,
    rng: &mut R,
) -> TopologySchedule {
    assert!(up_range.0 > 0.0 && up_range.0 <= up_range.1);
    assert!(down_range.0 > 0.0 && down_range.0 <= down_range.1);
    let backbone_set: BTreeSet<Edge> = backbone.iter().copied().collect();
    let chords = chords.min(n * (n - 1) / 2 - backbone_set.len());
    // Pick distinct chord edges not in the backbone.
    let mut chord_edges = BTreeSet::new();
    let mut guard = 0;
    while chord_edges.len() < chords {
        guard += 1;
        assert!(
            guard < 100 * chords + 1000,
            "could not find {chords} distinct chords for n={n}"
        );
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let e = Edge::between(i, j);
        if !backbone_set.contains(&e) {
            chord_edges.insert(e);
        }
    }
    let mut initial = backbone;
    let mut events = Vec::new();
    for e in chord_edges {
        let mut up = rng.gen_bool(0.5);
        if up {
            initial.push(e);
        }
        let mut t = rng.gen_range(0.01..up_range.1);
        while t <= horizon {
            let kind = if up {
                TopologyEventKind::Remove
            } else {
                TopologyEventKind::Add
            };
            events.push(ev(t, kind, e));
            up = !up;
            let dwell = if up {
                rng.gen_range(up_range.0..=up_range.1)
            } else {
                rng.gen_range(down_range.0..=down_range.1)
            };
            t += dwell;
        }
    }
    TopologySchedule::new(n, initial, events)
}

/// Random-waypoint mobility over the unit square.
///
/// Each node picks a random waypoint and moves toward it at `speed`,
/// re-picking on arrival. Connectivity is the geometric graph with the
/// given `radius`, sampled every `sample_dt`; edge diffs between samples
/// become add/remove events. If `backbone` is true a static path backbone
/// is overlaid so the schedule stays connected regardless of geometry.
#[allow(clippy::too_many_arguments)]
pub fn mobility<R: Rng>(
    n: usize,
    radius: f64,
    speed: f64,
    sample_dt: f64,
    horizon: f64,
    backbone: bool,
    rng: &mut R,
) -> TopologySchedule {
    assert!(n >= 2 && radius > 0.0 && speed > 0.0 && sample_dt > 0.0);
    let mut pos = generators::random_positions(n, rng);
    let mut waypoint = generators::random_positions(n, rng);
    let backbone_edges: BTreeSet<Edge> = if backbone {
        generators::path(n).into_iter().collect()
    } else {
        BTreeSet::new()
    };
    let geo_now: BTreeSet<Edge> = generators::geometric(&pos, radius).into_iter().collect();
    let mut current: BTreeSet<Edge> = geo_now.union(&backbone_edges).copied().collect();
    let initial: Vec<Edge> = current.iter().copied().collect();
    let mut events = Vec::new();
    let mut t = sample_dt;
    while t <= horizon {
        // Advance every node toward its waypoint.
        for i in 0..n {
            let (px, py) = pos[i];
            let (wx, wy) = waypoint[i];
            let (dx, dy) = (wx - px, wy - py);
            let d = (dx * dx + dy * dy).sqrt();
            let step = speed * sample_dt;
            if d <= step {
                pos[i] = (wx, wy);
                waypoint[i] = (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            } else {
                pos[i] = (px + dx / d * step, py + dy / d * step);
            }
        }
        let geo: BTreeSet<Edge> = generators::geometric(&pos, radius).into_iter().collect();
        let next: BTreeSet<Edge> = geo.union(&backbone_edges).copied().collect();
        for &e in next.difference(&current) {
            events.push(ev(t, TopologyEventKind::Add, e));
        }
        for &e in current.difference(&next) {
            events.push(ev(t, TopologyEventKind::Remove, e));
        }
        current = next;
        t += sample_dt;
    }
    TopologySchedule::new(n, initial, events)
}

/// Decorrelated per-edge stream seed for the lazy churn generator: each
/// chord edge owns an independent RNG stream derived from `(seed, edge)`,
/// so its toggle sequence can be generated on demand without replaying
/// any other edge's draws.
fn edge_stream_seed(seed: u64, e: Edge) -> u64 {
    seed ^ 0x6A09_E667_F3BC_C908
        ^ (e.lo().index() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (e.hi().index() as u64 + 1).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

/// Per-chord toggle state of a [`ChurnSource`].
#[derive(Debug)]
struct Chord {
    edge: Edge,
    /// The chord's private stream (dwell draws only).
    rng: StdRng,
    /// Whether the chord is currently up (state *before* the next toggle).
    up: bool,
}

/// The lazy counterpart of [`random_churn`]: a static backbone plus
/// flapping chord edges whose toggle sequences are generated **on
/// demand** from per-edge RNG streams.
///
/// Memory is `O(chords)` — one RNG and one pending-toggle heap entry per
/// chord — independent of how many toggle events the horizon implies,
/// which is what makes sustained churn at `n = 2^17` affordable. The
/// stream is deterministic per `(seed, parameters)` and, collected,
/// passes [`TopologySchedule::new`] validation (each chord alternates
/// add/remove at strictly increasing times).
///
/// Chord *placement* matches [`random_churn`]'s rejection sampling
/// exactly (same seed → same chord set); the toggle *times* come from
/// per-edge streams instead of one shared draw sequence, so the two
/// generators describe the same family but not bit-identical logs.
#[derive(Debug)]
pub struct ChurnSource {
    n: usize,
    horizon: f64,
    up_range: (f64, f64),
    down_range: (f64, f64),
    initial: Vec<Edge>,
    chords: Vec<Chord>,
    /// Pending next toggle per chord, earliest `(time, edge)` first.
    queue: BinaryHeap<Reverse<(Time, Edge, usize)>>,
}

impl ChurnSource {
    /// Builds the source; parameters mirror [`random_churn`].
    pub fn new(
        n: usize,
        backbone: Vec<Edge>,
        chords: usize,
        up_range: (f64, f64),
        down_range: (f64, f64),
        horizon: f64,
        seed: u64,
    ) -> Self {
        assert!(up_range.0 > 0.0 && up_range.0 <= up_range.1);
        assert!(down_range.0 > 0.0 && down_range.0 <= down_range.1);
        let backbone_set: BTreeSet<Edge> = backbone.iter().copied().collect();
        let chords = chords.min(n * (n - 1) / 2 - backbone_set.len());
        // Chord placement: same rejection sampling as the eager builder.
        let mut placement = StdRng::seed_from_u64(seed);
        let mut chord_edges = BTreeSet::new();
        let mut guard = 0;
        while chord_edges.len() < chords {
            guard += 1;
            assert!(
                guard < 100 * chords + 1000,
                "could not find {chords} distinct chords for n={n}"
            );
            let i = placement.gen_range(0..n);
            let j = placement.gen_range(0..n);
            if i == j {
                continue;
            }
            let e = Edge::between(i, j);
            if !backbone_set.contains(&e) {
                chord_edges.insert(e);
            }
        }
        let mut initial: BTreeSet<Edge> = backbone_set;
        let mut states = Vec::with_capacity(chords);
        let mut queue = BinaryHeap::with_capacity(chords);
        for e in chord_edges {
            let mut rng = StdRng::seed_from_u64(edge_stream_seed(seed, e));
            let up = rng.gen_bool(0.5);
            if up {
                initial.insert(e);
            }
            let first = rng.gen_range(0.01..up_range.1);
            let idx = states.len();
            states.push(Chord { edge: e, rng, up });
            if first <= horizon {
                queue.push(Reverse((Time::new(first), e, idx)));
            }
        }
        ChurnSource {
            n,
            horizon,
            up_range,
            down_range,
            initial: initial.into_iter().collect(),
            chords: states,
            queue,
        }
    }

    /// Emits the pending toggle of chord `idx` at `t` and schedules the
    /// chord's next toggle if it lands within the horizon.
    fn toggle(&mut self, t: Time, idx: usize) -> TopologyEvent {
        let chord = &mut self.chords[idx];
        let kind = if chord.up {
            TopologyEventKind::Remove
        } else {
            TopologyEventKind::Add
        };
        chord.up = !chord.up;
        let dwell = if chord.up {
            chord.rng.gen_range(self.up_range.0..=self.up_range.1)
        } else {
            chord.rng.gen_range(self.down_range.0..=self.down_range.1)
        };
        let next = t.seconds() + dwell;
        if next <= self.horizon {
            self.queue.push(Reverse((Time::new(next), chord.edge, idx)));
        }
        TopologyEvent {
            time: t,
            kind,
            edge: chord.edge,
        }
    }
}

impl TopologySource for ChurnSource {
    fn n(&self) -> usize {
        self.n
    }

    fn initial_edges(&mut self) -> Vec<Edge> {
        std::mem::take(&mut self.initial)
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.queue.peek().map(|Reverse((t, _, _))| *t)
    }

    fn pull_until(&mut self, until: Time, buf: &mut Vec<TopologyEvent>) {
        while let Some(&Reverse((t, _, idx))) = self.queue.peek() {
            if t > until {
                break;
            }
            self.queue.pop();
            buf.push(self.toggle(t, idx));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{is_connected, is_interval_connected};
    use crate::source::collect_schedule;
    use gcs_clocks::time::{at, secs};

    #[test]
    fn rotating_star_interval_connected_with_overlap() {
        let s = rotating_star(6, 10.0, 3.0, 100.0);
        // overlap 3 >= T 2 => 2-interval connected
        assert!(is_interval_connected(&s, secs(2.0), at(100.0)));
        // but 5-interval windows can straddle a full overlap: not enough
        assert!(!is_interval_connected(&s, secs(5.0), at(100.0)));
    }

    #[test]
    fn rotating_star_edges_change() {
        let s = rotating_star(5, 10.0, 2.0, 50.0);
        let early = s.edges_at(at(0.0));
        let late = s.edges_at(at(25.0));
        assert_ne!(early, late);
        // At all times the instantaneous graph is connected.
        for t in [0.0, 8.5, 10.0, 19.0, 33.3, 49.0] {
            let edges = s.edges_at(at(t));
            assert!(is_connected(5, edges.iter().copied()), "t={t}");
        }
    }

    #[test]
    fn staggered_ring_interval_connected() {
        // spacing 5 > downtime 2 + T 2
        let s = staggered_ring(6, 5.0, 2.0, 1.0, 200.0);
        assert!(is_interval_connected(&s, secs(2.0), at(200.0)));
    }

    #[test]
    fn staggered_ring_tight_spacing_fails() {
        // downtimes of consecutive edges overlap within a 4-window
        let s = staggered_ring(6, 3.0, 2.0, 1.0, 100.0);
        assert!(!is_interval_connected(&s, secs(4.0), at(100.0)));
    }

    #[test]
    fn random_churn_keeps_backbone() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = random_churn(
            10,
            generators::path(10),
            8,
            (2.0, 6.0),
            (1.0, 3.0),
            100.0,
            &mut rng,
        );
        // Backbone never churns => always interval connected.
        assert!(is_interval_connected(&s, secs(5.0), at(100.0)));
        assert!(!s.events().is_empty());
    }

    #[test]
    fn random_churn_deterministic_per_seed() {
        let mk = || {
            let mut rng = StdRng::seed_from_u64(42);
            random_churn(
                8,
                generators::path(8),
                5,
                (2.0, 4.0),
                (1.0, 2.0),
                60.0,
                &mut rng,
            )
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn mobility_with_backbone_connected() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = mobility(12, 0.3, 0.05, 1.0, 50.0, true, &mut rng);
        assert!(is_interval_connected(&s, secs(1.0), at(50.0)));
    }

    #[test]
    fn churn_source_collects_to_valid_schedule() {
        let src = ChurnSource::new(12, generators::path(12), 8, (2.0, 6.0), (1.0, 3.0), 80.0, 7);
        // `collect_schedule` runs the full TopologySchedule::new validator.
        let sched = collect_schedule(src);
        assert!(!sched.events().is_empty());
        // Backbone never churns, so the schedule stays interval connected.
        assert!(is_interval_connected(&sched, secs(5.0), at(80.0)));
    }

    #[test]
    fn churn_source_is_deterministic_per_seed_and_lazy_pulls_compose() {
        let mk = || {
            ChurnSource::new(
                10,
                generators::path(10),
                6,
                (2.0, 4.0),
                (1.0, 2.0),
                60.0,
                42,
            )
        };
        let all = collect_schedule(mk());
        // Pulling in small increments yields the identical stream.
        let mut src = mk();
        let initial = src.initial_edges();
        let mut events = Vec::new();
        let mut t = 0.0;
        while t < 70.0 {
            t += 1.3;
            src.pull_until(at(t), &mut events);
        }
        let chunked = TopologySchedule::new(10, initial, events);
        assert_eq!(all, chunked);
        assert_ne!(
            all,
            collect_schedule(ChurnSource::new(
                10,
                generators::path(10),
                6,
                (2.0, 4.0),
                (1.0, 2.0),
                60.0,
                43
            )),
            "different seeds must differ"
        );
    }

    #[test]
    fn churn_source_places_chords_like_the_eager_builder() {
        // Same seed ⇒ same chord placement (rejection sampling is shared);
        // toggle times differ (per-edge streams vs one shared stream).
        let seed = 11;
        let mut rng = StdRng::seed_from_u64(seed);
        let eager = random_churn(
            10,
            generators::path(10),
            5,
            (2.0, 6.0),
            (1.0, 3.0),
            50.0,
            &mut rng,
        );
        let lazy = collect_schedule(ChurnSource::new(
            10,
            generators::path(10),
            5,
            (2.0, 6.0),
            (1.0, 3.0),
            50.0,
            seed,
        ));
        let edges_of = |s: &TopologySchedule| -> BTreeSet<Edge> {
            s.events().iter().map(|ev| ev.edge).collect()
        };
        assert_eq!(edges_of(&eager), edges_of(&lazy));
    }

    #[test]
    fn mobility_produces_churn() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = mobility(15, 0.25, 0.1, 1.0, 80.0, false, &mut rng);
        let adds = s
            .events()
            .iter()
            .filter(|e| e.kind == TopologyEventKind::Add)
            .count();
        let removes = s.events().len() - adds;
        assert!(adds > 0 && removes > 0, "adds={adds} removes={removes}");
    }
}
