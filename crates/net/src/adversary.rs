//! Adversarial topology control: chord attacks against gradient skew.
//!
//! The Ω(log n / log log n) lower bound of Kuhn–Locher–Oshman (Theorem
//! 4.1) is driven by an *adaptive topology adversary*: it lets two nodes
//! sit at large graph distance while bounded drift silently separates
//! their logical clocks, then inserts a direct edge between them — the
//! accumulated end-to-end skew instantly becomes *local* skew across one
//! hop, and the algorithm needs time (the paper shows: unavoidably
//! Ω(log n / log log n) · D of it in the worst case) to dissipate it.
//!
//! [`AdversarialChurnSource`] is the empirical companion to that
//! argument. The base topology is the path `0 — 1 — … — n−1` with its
//! middle edge cut: two *islands* whose clocks the protocol cannot
//! compare, so bounded drift separates them at the full rate `2ρ` — the
//! adversary's reservoir of skew. On top the adversary plays a finite
//! list of [`BridgeAttack`]s — chord insertions at chosen instants, each
//! optionally removed again after a chosen lifetime so a later attack
//! can reuse the chord. The instant a chord lands across the cut, the
//! accumulated inter-island skew becomes one-hop *local* skew. The
//! source streams these through the standard lazy [`TopologySource`]
//! pull contract, so it composes with the engine exactly like every
//! well-behaved workload and stays bit-identical at every thread count.
//!
//! [`greedy_worst_case`] searches attack *placement and timing* for the
//! worst peak local skew: it scores a caller-supplied candidate set (the
//! caller's closure runs a full simulation per candidate and reports the
//! peak), keeps the best, then hill-climbs its insertion time with a
//! deterministic shrinking step. The search itself draws no randomness —
//! given the same candidates and evaluator it always returns the same
//! attack — so experiment traces built from its output are replayable.

use crate::generators;
use crate::ids::Edge;
use crate::schedule::{add_at, remove_at, TopologyEvent};
use crate::source::TopologySource;
use gcs_clocks::Time;

/// One chord attack: insert `edge` at `time`; if `lifetime` is finite,
/// remove it again at `time + lifetime`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BridgeAttack {
    /// Insertion instant (must be `> 0`).
    pub time: f64,
    /// The chord to insert. Must not be a path edge `{i, i+1}`.
    pub edge: Edge,
    /// How long the chord stays up; `f64::INFINITY` keeps it forever.
    pub lifetime: f64,
}

impl BridgeAttack {
    /// An attack inserting `edge` at `time` and keeping it up forever.
    pub fn permanent(time: f64, edge: Edge) -> Self {
        BridgeAttack {
            time,
            edge,
            lifetime: f64::INFINITY,
        }
    }

    /// An attack inserting `edge` at `time` and removing it after
    /// `lifetime`.
    pub fn transient(time: f64, edge: Edge, lifetime: f64) -> Self {
        BridgeAttack {
            time,
            edge,
            lifetime,
        }
    }
}

/// Two path islands (`0 — … — ⌈n/2⌉−1` and `⌈n/2⌉ — … — n−1`) plus a
/// time-ordered list of [`BridgeAttack`] chords, served through the lazy
/// pull contract. See the module docs for why this is the canonical
/// worst-case family.
#[derive(Clone, Debug)]
pub struct AdversarialChurnSource {
    n: usize,
    /// The expanded add/remove log, `(time, edge)`-sorted.
    events: Vec<TopologyEvent>,
    cursor: usize,
}

impl AdversarialChurnSource {
    /// The two-island path on `n` nodes attacked by `attacks` (the
    /// island cut sits between nodes `n/2 − 1` and `n/2`). Validates each
    /// attack:
    /// times `> 0` and finite, lifetimes `> 0` (possibly infinite),
    /// chords must span non-adjacent path positions, and the same chord
    /// must not be re-inserted while still up.
    pub fn new(n: usize, attacks: Vec<BridgeAttack>) -> Self {
        assert!(n >= 3, "need at least 3 nodes for a chord");
        let mut events = Vec::with_capacity(attacks.len() * 2);
        for a in &attacks {
            assert!(
                a.time > 0.0 && a.time.is_finite(),
                "attack time must be positive and finite, got {}",
                a.time
            );
            assert!(a.lifetime > 0.0, "attack lifetime must be > 0");
            let (i, j) = (a.edge.lo().index(), a.edge.hi().index());
            assert!(j < n, "chord endpoint {j} out of range for n = {n}");
            assert!(
                j - i >= 2,
                "chord {:?} is a path edge or self-loop; attacks must span distance >= 2",
                a.edge
            );
            events.push(add_at(a.time, a.edge));
            if a.lifetime.is_finite() {
                events.push(remove_at(a.time + a.lifetime, a.edge));
            }
        }
        events.sort_by(|x, y| {
            (x.time, x.edge)
                .partial_cmp(&(y.time, y.edge))
                .expect("finite attack times")
        });
        // Reject overlapping lives of one chord: the expanded log must
        // alternate add/remove per edge, which is exactly what the eager
        // validator enforces — fail here with a clearer message.
        for pair in events.windows(2) {
            if pair[0].edge == pair[1].edge {
                assert!(
                    pair[0].kind != pair[1].kind,
                    "chord {:?} re-{}ed while already in that state (overlapping attacks?)",
                    pair[0].edge,
                    match pair[1].kind {
                        crate::schedule::TopologyEventKind::Add => "insert",
                        crate::schedule::TopologyEventKind::Remove => "remov",
                    }
                );
            }
        }
        AdversarialChurnSource {
            n,
            events,
            cursor: 0,
        }
    }

    /// The expanded, sorted add/remove log (diagnostics and tests).
    pub fn events(&self) -> &[TopologyEvent] {
        &self.events
    }
}

impl TopologySource for AdversarialChurnSource {
    fn n(&self) -> usize {
        self.n
    }

    fn initial_edges(&mut self) -> Vec<Edge> {
        // The path minus its middle edge: two islands drifting apart.
        let cut = self.n / 2 - 1;
        generators::path(self.n)
            .into_iter()
            .filter(|e| e.lo().index() != cut)
            .collect()
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.events.get(self.cursor).map(|ev| ev.time)
    }

    fn pull_until(&mut self, until: Time, buf: &mut Vec<TopologyEvent>) {
        while let Some(ev) = self.events.get(self.cursor) {
            if ev.time > until {
                break;
            }
            buf.push(*ev);
            self.cursor += 1;
        }
    }
}

/// Greedy search for the worst-case [`BridgeAttack`] on the two-island
/// path.
///
/// Scores every candidate with `evaluate` (typically: run the protocol
/// under `AdversarialChurnSource::new(n, vec![candidate])` and return the
/// peak local skew), keeps the argmax, then hill-climbs its insertion
/// time: `refine_steps` rounds of trying `time ± step` with `step`
/// halving whenever neither direction improves. Ties keep the incumbent
/// (earlier candidate / unmoved time), so the search is deterministic.
///
/// Returns the best attack and its score. Panics if `candidates` is
/// empty or an evaluation returns NaN.
pub fn greedy_worst_case(
    candidates: Vec<BridgeAttack>,
    refine_steps: usize,
    mut evaluate: impl FnMut(BridgeAttack) -> f64,
) -> (BridgeAttack, f64) {
    assert!(!candidates.is_empty(), "need at least one candidate attack");
    let mut scored = candidates.into_iter().map(|c| {
        let s = evaluate(c);
        assert!(!s.is_nan(), "evaluator returned NaN for {c:?}");
        (c, s)
    });
    let (mut best, mut best_score) = scored.next().expect("non-empty");
    for (c, s) in scored {
        if s > best_score {
            (best, best_score) = (c, s);
        }
    }
    // Refine timing around the winner with a deterministic shrinking step.
    let mut step = best.time * 0.25;
    for _ in 0..refine_steps {
        let mut improved = false;
        for dir in [-1.0, 1.0] {
            let t = best.time + dir * step;
            if t <= 0.0 {
                continue;
            }
            let cand = BridgeAttack { time: t, ..best };
            let s = evaluate(cand);
            assert!(!s.is_nan(), "evaluator returned NaN for {cand:?}");
            if s > best_score {
                (best, best_score) = (cand, s);
                improved = true;
            }
        }
        if !improved {
            step *= 0.5;
        }
    }
    (best, best_score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::collect_schedule;
    use gcs_clocks::time::at;

    #[test]
    fn expands_attacks_into_a_valid_schedule() {
        let src = AdversarialChurnSource::new(
            8,
            vec![
                BridgeAttack::transient(5.0, Edge::between(0, 7), 3.0),
                BridgeAttack::permanent(2.0, Edge::between(2, 5)),
            ],
        );
        let sched = collect_schedule(src.clone());
        assert_eq!(sched.n(), 8);
        assert_eq!(sched.initial_edges().count(), 6, "two path islands");
        assert_eq!(sched.events().len(), 3, "two adds + one remove");
        assert_eq!(src.events()[0].time, at(2.0), "sorted by time");
    }

    #[test]
    fn pull_contract_is_honored() {
        let mut src = AdversarialChurnSource::new(
            6,
            vec![BridgeAttack::transient(4.0, Edge::between(0, 5), 2.0)],
        );
        assert_eq!(src.initial_edges().len(), 4);
        assert_eq!(src.peek_time(), Some(at(4.0)));
        let mut buf = Vec::new();
        src.pull_until(at(3.9), &mut buf);
        assert!(buf.is_empty());
        src.pull_until(at(6.0), &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(src.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "distance >= 2")]
    fn rejects_path_edge_chords() {
        AdversarialChurnSource::new(6, vec![BridgeAttack::permanent(1.0, Edge::between(2, 3))]);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn rejects_overlapping_lives_of_one_chord() {
        AdversarialChurnSource::new(
            6,
            vec![
                BridgeAttack::transient(1.0, Edge::between(0, 5), 10.0),
                BridgeAttack::transient(5.0, Edge::between(0, 5), 1.0),
            ],
        );
    }

    #[test]
    fn greedy_search_finds_the_peak_and_refines_toward_it() {
        // Score is a tent function of insertion time peaking at t = 60;
        // the searcher should walk the winning candidate toward it.
        let candidates = vec![
            BridgeAttack::permanent(30.0, Edge::between(0, 9)),
            BridgeAttack::permanent(50.0, Edge::between(0, 9)),
            BridgeAttack::permanent(80.0, Edge::between(0, 9)),
        ];
        let (best, score) = greedy_worst_case(candidates, 8, |a| -(a.time - 60.0).abs());
        assert!((best.time - 60.0).abs() < 4.0, "refined near the peak");
        assert!(score > -4.0);
        // Determinism: same inputs, same output.
        let candidates = vec![
            BridgeAttack::permanent(30.0, Edge::between(0, 9)),
            BridgeAttack::permanent(50.0, Edge::between(0, 9)),
            BridgeAttack::permanent(80.0, Edge::between(0, 9)),
        ];
        let (again, score2) = greedy_worst_case(candidates, 8, |a| -(a.time - 60.0).abs());
        assert_eq!(best, again);
        assert_eq!(score, score2);
    }
}
