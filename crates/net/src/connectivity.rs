//! Instantaneous and T-interval connectivity.
//!
//! Definition 3.1 of the paper: a dynamic graph is *T-interval connected*
//! if for all `t ≥ 0` the static subgraph of edges that exist throughout
//! `[t, t + T]` is connected. Edge presence only changes at schedule
//! events, so the set `E|_{[t, t+T]}` changes only when `t` crosses an
//! event time or an event time minus `T`; checking those critical window
//! starts (plus 0) is exhaustive.

use crate::ids::{Edge, NodeId};
use crate::schedule::TopologySchedule;
use gcs_clocks::{Duration, Time};

/// Union-find over node indices; used for fast connectivity checks.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton components.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of `x`'s component (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the components of `a` and `b`; returns true if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// True if `a` and `b` are in the same component.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// True if the static graph `(n, edges)` is connected.
pub fn is_connected(n: usize, edges: impl IntoIterator<Item = Edge>) -> bool {
    if n <= 1 {
        return true;
    }
    let mut uf = UnionFind::new(n);
    for e in edges {
        uf.union(e.lo().0, e.hi().0);
    }
    uf.components() == 1
}

/// A violation of T-interval connectivity: the window `[start, start+T]`
/// whose surviving edge set is disconnected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConnectivityViolation {
    /// Start of the offending window.
    pub window_start: Time,
    /// Number of connected components of the surviving subgraph.
    pub components: usize,
}

/// Verifies `T`-interval connectivity of a schedule over `[0, horizon]`.
///
/// Returns the first violation found, or `None` if the schedule is
/// `T`-interval connected on the horizon. Windows are clipped so they end
/// at or before `horizon` (behaviour after the horizon is not checked).
pub fn check_interval_connectivity(
    schedule: &TopologySchedule,
    interval: Duration,
    horizon: Time,
) -> Option<ConnectivityViolation> {
    assert!(interval.is_non_negative());
    let n = schedule.n();
    // Critical window starts: 0, every event time, and every event time − T
    // (the set of edges alive throughout [t, t+T] changes only there).
    let mut starts: Vec<Time> = vec![Time::ZERO];
    for ev in schedule.events() {
        if ev.time <= horizon {
            starts.push(ev.time);
        }
        let pre = ev.time - interval;
        if pre.is_valid_sim_time() && pre <= horizon {
            starts.push(pre);
        }
    }
    starts.sort();
    starts.dedup();
    for t in starts {
        let end = (t + interval).min(horizon);
        if end < t {
            continue;
        }
        let edges = schedule.edges_throughout(t, end);
        let mut uf = UnionFind::new(n);
        for e in &edges {
            uf.union(e.lo().0, e.hi().0);
        }
        if uf.components() != 1 {
            return Some(ConnectivityViolation {
                window_start: t,
                components: uf.components(),
            });
        }
    }
    None
}

/// Convenience wrapper: true if the schedule is `T`-interval connected.
pub fn is_interval_connected(
    schedule: &TopologySchedule,
    interval: Duration,
    horizon: Time,
) -> bool {
    check_interval_connectivity(schedule, interval, horizon).is_none()
}

/// Nodes reachable from `src` in the static graph — used by tests that
/// check cut/propagation arguments.
pub fn reachable_set(n: usize, edges: impl IntoIterator<Item = Edge>, src: NodeId) -> Vec<bool> {
    let dist = crate::distance::bfs_distance(n, edges, src);
    dist.into_iter().map(|d| d.is_some()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::ids::node;
    use crate::schedule::{add_at, remove_at};
    use gcs_clocks::time::{at, secs};

    fn e(i: usize, j: usize) -> Edge {
        Edge::between(i, j)
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.components(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.components(), 2);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        uf.union(1, 3);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.components(), 1);
    }

    #[test]
    fn static_connectivity() {
        assert!(is_connected(5, generators::path(5)));
        assert!(!is_connected(3, [e(0, 1)]));
        assert!(is_connected(1, []));
        assert!(is_connected(0, []));
    }

    #[test]
    fn static_schedule_interval_connected() {
        let s = TopologySchedule::static_graph(5, generators::ring(5));
        assert!(is_interval_connected(&s, secs(10.0), at(100.0)));
    }

    #[test]
    fn flapping_edge_breaks_interval_connectivity() {
        // Path 0-1-2; edge {1,2} vanishes during [10, 12].
        let s = TopologySchedule::new(
            3,
            generators::path(3),
            vec![remove_at(10.0, e(1, 2)), add_at(12.0, e(1, 2))],
        );
        // With T=1 the first bad window starts at 9 = 10 − T: the removal
        // at time 10 falls inside [9, 10], leaving only {0,1}.
        let v = check_interval_connectivity(&s, secs(1.0), at(100.0)).unwrap();
        assert_eq!(v.window_start, at(9.0));
        assert_eq!(v.components, 2);
        // With T=0 the graph momentarily disconnected also fails...
        assert!(!is_interval_connected(&s, secs(0.0), at(100.0)));
    }

    #[test]
    fn alternating_bridges_are_interval_connected_for_small_t_only() {
        // Node 1 reaches the rest alternately through {0,1} (up on [0,10)
        // and [20,∞)) or through {1,2} (up on [8,22)); {0,2} is static.
        // The instantaneous graph is always connected and short windows
        // always contain a surviving attachment for node 1, but a
        // 15-window spanning [8, 23] keeps neither {0,1} nor {1,2} alive
        // throughout.
        let s = TopologySchedule::new(
            3,
            [e(0, 1), e(0, 2)],
            vec![
                add_at(8.0, e(1, 2)),
                remove_at(10.0, e(0, 1)),
                add_at(20.0, e(0, 1)),
                remove_at(22.0, e(1, 2)),
            ],
        );
        assert!(is_interval_connected(&s, secs(1.0), at(30.0)));
        assert!(!is_interval_connected(&s, secs(15.0), at(30.0)));
    }

    #[test]
    fn window_clipping_at_horizon() {
        // Edge removed at 90 and never restored; with horizon 80 no window
        // sees the removal.
        let s = TopologySchedule::new(2, [e(0, 1)], vec![remove_at(90.0, e(0, 1))]);
        assert!(is_interval_connected(&s, secs(5.0), at(80.0)));
        assert!(!is_interval_connected(&s, secs(5.0), at(95.0)));
    }

    #[test]
    fn reachable_set_matches_bfs() {
        let r = reachable_set(4, [e(0, 1), e(2, 3)], node(0));
        assert_eq!(r, vec![true, true, false, false]);
    }
}
