//! Timed topology-change schedules.
//!
//! A [`TopologySchedule`] is the full description of a dynamic graph for one
//! execution: the initial edge set `E₀` plus a time-ordered log of
//! `add`/`remove` events. Section 3.2 of the paper assumes that no edge is
//! both added and removed at the same instant; the schedule validates that,
//! along with basic sanity (adds only for absent edges, removes only for
//! present ones).

use crate::ids::Edge;
use gcs_clocks::Time;
use std::collections::BTreeSet;

/// What happened to an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyEventKind {
    /// The link formed.
    Add,
    /// The link failed.
    Remove,
}

/// One timed topology change.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopologyEvent {
    /// Real time of the change.
    pub time: Time,
    /// Add or remove.
    pub kind: TopologyEventKind,
    /// The affected edge.
    pub edge: Edge,
}

impl TopologyEvent {
    /// An addition of `edge` at real time `time`.
    pub fn add_at(time: f64, edge: Edge) -> Self {
        TopologyEvent {
            time: Time::new(time),
            kind: TopologyEventKind::Add,
            edge,
        }
    }

    /// A removal of `edge` at real time `time`.
    pub fn remove_at(time: f64, edge: Edge) -> Self {
        TopologyEvent {
            time: Time::new(time),
            kind: TopologyEventKind::Remove,
            edge,
        }
    }
}

/// A validated dynamic-graph description: initial edges + event log.
#[derive(Clone, Debug, PartialEq)]
pub struct TopologySchedule {
    n: usize,
    initial: BTreeSet<Edge>,
    events: Vec<TopologyEvent>,
}

impl TopologySchedule {
    /// A purely static graph: initial edges, no events.
    pub fn static_graph(n: usize, edges: impl IntoIterator<Item = Edge>) -> Self {
        Self::new(n, edges, Vec::new())
    }

    /// Builds and validates a schedule.
    ///
    /// Validation rules:
    /// * all endpoints are `< n`,
    /// * events are sorted by time (ties allowed between *different* edges),
    /// * the same edge is never added and removed at the same time,
    /// * adds apply to absent edges, removes to present edges,
    /// * all event times are `> 0` (time 0 state is `initial`).
    pub fn new(
        n: usize,
        initial: impl IntoIterator<Item = Edge>,
        mut events: Vec<TopologyEvent>,
    ) -> Self {
        let initial: BTreeSet<Edge> = initial.into_iter().collect();
        for e in &initial {
            assert!(
                e.hi().index() < n,
                "edge {e:?} endpoint out of range for n={n}"
            );
        }
        events.sort_by(|x, y| x.time.cmp(&y.time).then(x.edge.cmp(&y.edge)));
        let mut present = initial.clone();
        let mut i = 0;
        while i < events.len() {
            // Group events at identical times and check the same edge is not
            // both added and removed simultaneously.
            let t = events[i].time;
            assert!(
                t > Time::ZERO,
                "topology events must occur strictly after time 0 (got {t:?})"
            );
            let mut j = i;
            while j < events.len() && events[j].time == t {
                j += 1;
            }
            let batch = &events[i..j];
            for (k, ev) in batch.iter().enumerate() {
                assert!(
                    ev.edge.hi().index() < n,
                    "edge {:?} endpoint out of range for n={n}",
                    ev.edge
                );
                for other in &batch[k + 1..] {
                    assert!(
                        !(other.edge == ev.edge && other.kind != ev.kind),
                        "edge {:?} both added and removed at {t:?}",
                        ev.edge
                    );
                }
            }
            for ev in batch {
                match ev.kind {
                    TopologyEventKind::Add => {
                        assert!(
                            present.insert(ev.edge),
                            "add of already-present edge {:?} at {t:?}",
                            ev.edge
                        );
                    }
                    TopologyEventKind::Remove => {
                        assert!(
                            present.remove(&ev.edge),
                            "remove of absent edge {:?} at {t:?}",
                            ev.edge
                        );
                    }
                }
            }
            i = j;
        }
        TopologySchedule { n, initial, events }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The initial edge set `E₀`.
    pub fn initial_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.initial.iter().copied()
    }

    /// The time-ordered event log.
    pub fn events(&self) -> &[TopologyEvent] {
        &self.events
    }

    /// The set of edges present at time `t`.
    ///
    /// Convention (matching Section 3.2): an edge added at time `s` is in
    /// `E(t)` for all `t ≥ s`; an edge removed at time `s` is *not* in
    /// `E(t)` for `t ≥ s` (removal takes effect at the removal instant).
    pub fn edges_at(&self, t: Time) -> BTreeSet<Edge> {
        let mut present = self.initial.clone();
        for ev in &self.events {
            if ev.time > t {
                break;
            }
            match ev.kind {
                TopologyEventKind::Add => {
                    present.insert(ev.edge);
                }
                TopologyEventKind::Remove => {
                    present.remove(&ev.edge);
                }
            }
        }
        present
    }

    /// True if `edge` exists throughout the closed interval `[t1, t2]`:
    /// present at `t1` and not removed at any time in `[t1, t2]`.
    pub fn exists_throughout(&self, edge: Edge, t1: Time, t2: Time) -> bool {
        assert!(t1 <= t2);
        if !self.edges_at(t1).contains(&edge) {
            return false;
        }
        !self.events.iter().any(|ev| {
            ev.edge == edge && ev.kind == TopologyEventKind::Remove && ev.time > t1 && ev.time <= t2
        })
    }

    /// The set of edges that exist throughout `[t1, t2]` — the
    /// `E|_{[t,t+T]}` of Definition 3.1.
    pub fn edges_throughout(&self, t1: Time, t2: Time) -> BTreeSet<Edge> {
        self.edges_at(t1)
            .into_iter()
            .filter(|&e| self.exists_throughout(e, t1, t2))
            .collect()
    }

    /// Merges another schedule's events into this one (used by scenario
    /// builders that overlay extra edge insertions, e.g. Theorem 4.1's
    /// `E_new`). Re-validates the result.
    pub fn with_extra_events(&self, extra: Vec<TopologyEvent>) -> Self {
        let mut events = self.events.clone();
        events.extend(extra);
        Self::new(self.n, self.initial.iter().copied(), events)
    }

    /// Last event time, or time 0 for static schedules.
    pub fn last_event_time(&self) -> Time {
        self.events.last().map(|e| e.time).unwrap_or(Time::ZERO)
    }
}

/// Convenience constructor for an add event.
pub fn add_at(t: f64, edge: Edge) -> TopologyEvent {
    TopologyEvent {
        time: Time::new(t),
        kind: TopologyEventKind::Add,
        edge,
    }
}

/// Convenience constructor for a remove event.
pub fn remove_at(t: f64, edge: Edge) -> TopologyEvent {
    TopologyEvent {
        time: Time::new(t),
        kind: TopologyEventKind::Remove,
        edge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_clocks::time::at;

    fn e(i: usize, j: usize) -> Edge {
        Edge::between(i, j)
    }

    #[test]
    fn static_schedule_is_constant() {
        let s = TopologySchedule::static_graph(3, [e(0, 1), e(1, 2)]);
        assert_eq!(s.edges_at(at(0.0)).len(), 2);
        assert_eq!(s.edges_at(at(100.0)).len(), 2);
        assert!(s.exists_throughout(e(0, 1), at(0.0), at(50.0)));
    }

    #[test]
    fn add_remove_sequence_replays() {
        let s = TopologySchedule::new(
            3,
            [e(0, 1)],
            vec![add_at(5.0, e(1, 2)), remove_at(9.0, e(0, 1))],
        );
        assert_eq!(s.edges_at(at(0.0)), [e(0, 1)].into_iter().collect());
        assert_eq!(
            s.edges_at(at(5.0)),
            [e(0, 1), e(1, 2)].into_iter().collect()
        );
        assert_eq!(s.edges_at(at(9.0)), [e(1, 2)].into_iter().collect());
    }

    #[test]
    fn exists_throughout_honours_removal() {
        let s = TopologySchedule::new(2, [e(0, 1)], vec![remove_at(10.0, e(0, 1))]);
        assert!(s.exists_throughout(e(0, 1), at(0.0), at(9.9)));
        assert!(!s.exists_throughout(e(0, 1), at(0.0), at(10.0)));
        assert!(!s.exists_throughout(e(0, 1), at(10.0), at(11.0)));
    }

    #[test]
    fn edges_throughout_filters() {
        let s = TopologySchedule::new(
            3,
            [e(0, 1), e(1, 2)],
            vec![remove_at(5.0, e(1, 2)), add_at(6.0, e(1, 2))],
        );
        assert_eq!(
            s.edges_throughout(at(0.0), at(4.0)),
            [e(0, 1), e(1, 2)].into_iter().collect()
        );
        assert_eq!(
            s.edges_throughout(at(0.0), at(5.0)),
            [e(0, 1)].into_iter().collect()
        );
        assert_eq!(
            s.edges_throughout(at(6.0), at(100.0)),
            [e(0, 1), e(1, 2)].into_iter().collect()
        );
    }

    #[test]
    fn with_extra_events_merges() {
        let s = TopologySchedule::static_graph(3, [e(0, 1)]);
        let s2 = s.with_extra_events(vec![add_at(3.0, e(1, 2))]);
        assert_eq!(s2.edges_at(at(4.0)).len(), 2);
        assert_eq!(s2.last_event_time(), at(3.0));
        assert_eq!(s.last_event_time(), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "both added and removed")]
    fn simultaneous_add_remove_rejected() {
        let _ = TopologySchedule::new(
            2,
            [e(0, 1)],
            vec![remove_at(5.0, e(0, 1)), add_at(5.0, e(0, 1))],
        );
    }

    #[test]
    #[should_panic(expected = "already-present")]
    fn double_add_rejected() {
        let _ = TopologySchedule::new(2, [e(0, 1)], vec![add_at(5.0, e(0, 1))]);
    }

    #[test]
    #[should_panic(expected = "absent edge")]
    fn remove_absent_rejected() {
        let _ = TopologySchedule::new(2, [], vec![remove_at(5.0, e(0, 1))]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_rejected() {
        let _ = TopologySchedule::static_graph(2, [e(0, 5)]);
    }

    #[test]
    fn events_sorted_on_construction() {
        let s = TopologySchedule::new(
            4,
            [],
            vec![
                add_at(7.0, e(0, 1)),
                add_at(3.0, e(2, 3)),
                add_at(5.0, e(1, 2)),
            ],
        );
        let times: Vec<f64> = s.events().iter().map(|ev| ev.time.seconds()).collect();
        assert_eq!(times, vec![3.0, 5.0, 7.0]);
    }
}
