//! Pull-based topology event streams.
//!
//! A [`TopologySource`] is the lazy counterpart of a
//! [`TopologySchedule`]: instead of materializing the whole add/remove
//! log up front (hundreds of MB at `n = 2^17` under sustained churn), a
//! source is *pulled* — the simulation engine asks for events only
//! shortly before their instant is processed, so peak memory is
//! independent of the total churn-event count.
//!
//! ## The contract
//!
//! * [`initial_edges`](TopologySource::initial_edges) is called exactly
//!   once, before any pull, and returns `E₀` sorted ascending with no
//!   duplicates (the order [`TopologySchedule`] iterates its initial
//!   set, so eager and lazy paths replay identically).
//! * Events are emitted in nondecreasing `(time, edge)` order — the
//!   exact order [`TopologySchedule::new`] sorts an eager log into —
//!   with every event time `> 0`.
//! * **Horizon contract**: after `pull_until(t, buf)` returns, every
//!   event with time `≤ t` has been emitted; `peek_time` names the time
//!   of the earliest event not yet emitted (`None` once exhausted).
//!   Callers pull with nondecreasing `t`.
//! * The emitted stream, collected, must pass [`TopologySchedule::new`]
//!   validation: no same-instant add+remove of one edge, adds only for
//!   absent edges, removes only for present ones. [`collect_schedule`]
//!   does exactly that collection and is how the property tests pin
//!   every lazy generator to the eager validator.
//!
//! [`ScheduleSource`] adapts an eager schedule to this interface (kept
//! for tests, validation, and the many experiments whose logs are tiny);
//! the lazy generators live in [`crate::churn`] ([`ChurnSource`]) and
//! [`crate::workloads`] (mobility, partition-and-heal, flash crowds).
//!
//! [`ChurnSource`]: crate::churn::ChurnSource

use crate::ids::Edge;
use crate::schedule::{TopologyEvent, TopologySchedule};
use gcs_clocks::Time;

/// A time-ordered, pull-based stream of topology events. See the module
/// docs for the full contract.
pub trait TopologySource: Send {
    /// Number of nodes in the static node set `V`.
    fn n(&self) -> usize;

    /// The initial edge set `E₀`, sorted ascending, no duplicates.
    /// Called exactly once, before any pull.
    fn initial_edges(&mut self) -> Vec<Edge>;

    /// Time of the earliest event not yet emitted, or `None` when the
    /// stream is exhausted.
    fn peek_time(&mut self) -> Option<Time>;

    /// Appends every pending event with time `≤ until` to `buf`, in
    /// nondecreasing `(time, edge)` order.
    fn pull_until(&mut self, until: Time, buf: &mut Vec<TopologyEvent>);
}

impl TopologySource for Box<dyn TopologySource> {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn initial_edges(&mut self) -> Vec<Edge> {
        (**self).initial_edges()
    }
    fn peek_time(&mut self) -> Option<Time> {
        (**self).peek_time()
    }
    fn pull_until(&mut self, until: Time, buf: &mut Vec<TopologyEvent>) {
        (**self).pull_until(until, buf)
    }
}

/// Adapter: an eagerly materialized [`TopologySchedule`] served through
/// the pull interface. The schedule's validated, `(time, edge)`-sorted
/// event log is replayed verbatim, so engines built from a schedule and
/// engines built from any lazy source emitting the same stream produce
/// bit-identical traces.
#[derive(Clone, Debug)]
pub struct ScheduleSource {
    schedule: TopologySchedule,
    cursor: usize,
}

impl ScheduleSource {
    /// Wraps a validated schedule.
    pub fn new(schedule: TopologySchedule) -> Self {
        ScheduleSource {
            schedule,
            cursor: 0,
        }
    }

    /// The wrapped schedule.
    pub fn schedule(&self) -> &TopologySchedule {
        &self.schedule
    }
}

impl TopologySource for ScheduleSource {
    fn n(&self) -> usize {
        self.schedule.n()
    }

    fn initial_edges(&mut self) -> Vec<Edge> {
        self.schedule.initial_edges().collect()
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.schedule.events().get(self.cursor).map(|ev| ev.time)
    }

    fn pull_until(&mut self, until: Time, buf: &mut Vec<TopologyEvent>) {
        let events = self.schedule.events();
        while let Some(ev) = events.get(self.cursor) {
            if ev.time > until {
                break;
            }
            buf.push(*ev);
            self.cursor += 1;
        }
    }
}

/// Drains a (finite-horizon) source completely and validates the result
/// through [`TopologySchedule::new`] — the bridge from lazy generators
/// back to the eager world. Panics exactly where the eager validator
/// would: unsorted times, same-instant add+remove of one edge, adds of
/// present edges, removes of absent ones.
pub fn collect_schedule(mut source: impl TopologySource) -> TopologySchedule {
    let n = source.n();
    let initial = source.initial_edges();
    let mut events = Vec::new();
    source.pull_until(Time::new(f64::MAX), &mut events);
    debug_assert!(source.peek_time().is_none(), "source not exhausted");
    for pair in events.windows(2) {
        debug_assert!(
            (pair[0].time, pair[0].edge) <= (pair[1].time, pair[1].edge),
            "source emitted out of (time, edge) order: {pair:?}"
        );
    }
    TopologySchedule::new(n, initial, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{add_at, remove_at};
    use gcs_clocks::time::at;

    fn sample_schedule() -> TopologySchedule {
        TopologySchedule::new(
            4,
            [Edge::between(0, 1), Edge::between(1, 2)],
            vec![
                add_at(2.0, Edge::between(2, 3)),
                remove_at(5.0, Edge::between(0, 1)),
                add_at(9.0, Edge::between(0, 1)),
            ],
        )
    }

    #[test]
    fn schedule_source_round_trips() {
        let sched = sample_schedule();
        let collected = collect_schedule(ScheduleSource::new(sched.clone()));
        assert_eq!(collected, sched);
    }

    #[test]
    fn pull_until_respects_horizon_contract() {
        let sched = sample_schedule();
        let mut src = ScheduleSource::new(sched.clone());
        assert_eq!(src.initial_edges().len(), 2);
        assert_eq!(src.peek_time(), Some(at(2.0)));
        let mut buf = Vec::new();
        src.pull_until(at(1.9), &mut buf);
        assert!(buf.is_empty(), "nothing due before 2.0");
        src.pull_until(at(5.0), &mut buf);
        assert_eq!(buf.len(), 2, "events at 2.0 and 5.0 are due");
        assert_eq!(src.peek_time(), Some(at(9.0)));
        src.pull_until(at(100.0), &mut buf);
        assert_eq!(buf.len(), 3);
        assert_eq!(src.peek_time(), None);
        assert_eq!(&buf[..], sched.events());
    }

    #[test]
    fn initial_edges_come_out_sorted() {
        let sched = TopologySchedule::static_graph(
            5,
            [
                Edge::between(3, 4),
                Edge::between(0, 1),
                Edge::between(1, 3),
            ],
        );
        let mut src = ScheduleSource::new(sched);
        let initial = src.initial_edges();
        assert!(initial.windows(2).all(|w| w[0] < w[1]));
    }
}
