#![warn(missing_docs)]

//! # gcs-net
//!
//! Dynamic-network substrate for gradient clock synchronization.
//!
//! The paper models a dynamic network over a *static* node set `V`: edges
//! appear and disappear arbitrarily (events `add({u,v})`, `remove({u,v})`),
//! subject only to *T-interval connectivity* (Definition 3.1): for every
//! `t`, the subgraph of edges present throughout `[t, t+T]` is connected.
//!
//! This crate provides:
//!
//! * [`NodeId`] and canonical undirected [`Edge`] identifiers,
//! * [`TopologySchedule`] — the timed add/remove event log that defines a
//!   dynamic graph `E(t)`, with validation (no simultaneous add+remove of
//!   the same edge, adds only for absent edges, …),
//! * [`DynamicGraph`] — replayable graph state with full presence history
//!   and the `exists_throughout` predicate from Section 3.2,
//! * [`generators`] — static topologies (paths, rings, grids, trees,
//!   G(n,p), random geometric, and the paper's two-chain lower-bound
//!   network),
//! * [`churn`] — dynamic-topology generators (rotating star, flapping
//!   bridge, random churn over a stable backbone, waypoint mobility),
//! * [`source`] — the pull-based [`TopologySource`] stream abstraction
//!   (lazy topology generation with memory independent of the total
//!   churn-event count) and the [`ScheduleSource`] adapter over eager
//!   schedules,
//! * [`workloads`] — lazy dynamic-workload families: random-waypoint
//!   mobility, periodic partition-and-heal, flash-crowd join/leave waves,
//! * [`adversary`] — worst-case chord attacks on a path
//!   ([`AdversarialChurnSource`]) and a deterministic greedy search over
//!   attack placement/timing, the empirical companion to Theorem 4.1,
//! * [`connectivity`] — instantaneous and T-interval connectivity checks,
//! * [`distance`] — BFS distances, eccentricity, diameter.
//!
//! # Example
//!
//! A three-node dynamic graph: one edge fails, another forms, and the
//! validated schedule replays the edge set at any instant:
//!
//! ```
//! use gcs_clocks::time::at;
//! use gcs_net::schedule::{add_at, remove_at};
//! use gcs_net::{Edge, TopologySchedule};
//!
//! let schedule = TopologySchedule::new(
//!     3,
//!     [Edge::between(0, 1)],
//!     vec![add_at(5.0, Edge::between(1, 2)), remove_at(9.0, Edge::between(0, 1))],
//! );
//! assert_eq!(schedule.edges_at(at(0.0)).len(), 1);
//! assert_eq!(schedule.edges_at(at(5.0)).len(), 2);
//! assert!(!schedule.edges_at(at(9.0)).contains(&Edge::between(0, 1)));
//! // {1,2} exists throughout [5, 100] — it is never removed.
//! assert!(schedule.exists_throughout(Edge::between(1, 2), at(5.0), at(100.0)));
//! ```

pub mod adversary;
pub mod churn;
pub mod connectivity;
pub mod distance;
pub mod dynamic;
pub mod generators;
pub mod ids;
pub mod schedule;
pub mod source;
pub mod workloads;

pub use adversary::{greedy_worst_case, AdversarialChurnSource, BridgeAttack};
pub use dynamic::DynamicGraph;
pub use ids::{node, Edge, NodeId};
pub use schedule::{TopologyEvent, TopologyEventKind, TopologySchedule};
pub use source::{collect_schedule, ScheduleSource, TopologySource};
