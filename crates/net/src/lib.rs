#![warn(missing_docs)]

//! # gcs-net
//!
//! Dynamic-network substrate for gradient clock synchronization.
//!
//! The paper models a dynamic network over a *static* node set `V`: edges
//! appear and disappear arbitrarily (events `add({u,v})`, `remove({u,v})`),
//! subject only to *T-interval connectivity* (Definition 3.1): for every
//! `t`, the subgraph of edges present throughout `[t, t+T]` is connected.
//!
//! This crate provides:
//!
//! * [`NodeId`] and canonical undirected [`Edge`] identifiers,
//! * [`TopologySchedule`] — the timed add/remove event log that defines a
//!   dynamic graph `E(t)`, with validation (no simultaneous add+remove of
//!   the same edge, adds only for absent edges, …),
//! * [`DynamicGraph`] — replayable graph state with full presence history
//!   and the `exists_throughout` predicate from Section 3.2,
//! * [`generators`] — static topologies (paths, rings, grids, trees,
//!   G(n,p), random geometric, and the paper's two-chain lower-bound
//!   network),
//! * [`churn`] — dynamic-topology generators (rotating star, flapping
//!   bridge, random churn over a stable backbone, waypoint mobility),
//! * [`connectivity`] — instantaneous and T-interval connectivity checks,
//! * [`distance`] — BFS distances, eccentricity, diameter.

pub mod churn;
pub mod connectivity;
pub mod distance;
pub mod dynamic;
pub mod generators;
pub mod ids;
pub mod schedule;

pub use dynamic::DynamicGraph;
pub use ids::{node, Edge, NodeId};
pub use schedule::{TopologyEvent, TopologyEventKind, TopologySchedule};
