//! Property-based tests on the dynamic-graph substrate.

use gcs_clocks::time::{at, secs};
use gcs_net::churn::ChurnSource;
use gcs_net::schedule::{TopologyEvent, TopologyEventKind};
use gcs_net::source::{collect_schedule, ScheduleSource, TopologySource};
use gcs_net::workloads::{FlashCrowdSource, MobilitySource, PartitionSource};
use gcs_net::{connectivity, distance, generators, node, DynamicGraph, Edge, TopologySchedule};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a random, *valid* event sequence over `n` nodes — each edge
/// toggles between present and absent at strictly increasing times.
fn arb_schedule(n: usize) -> impl Strategy<Value = TopologySchedule> {
    let potential: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .collect();
    let m = potential.len();
    (
        prop::collection::vec(any::<bool>(), m),
        prop::collection::vec((0usize..m, 0.1f64..5.0), 0..40),
    )
        .prop_map(move |(initial_mask, toggles)| {
            let initial: Vec<Edge> = potential
                .iter()
                .zip(&initial_mask)
                .filter(|(_, &up)| up)
                .map(|(&(i, j), _)| Edge::between(i, j))
                .collect();
            let mut present: BTreeSet<Edge> = initial.iter().copied().collect();
            let mut t = 0.0;
            let mut events = Vec::new();
            for (idx, gap) in toggles {
                t += gap;
                let e = Edge::between(potential[idx].0, potential[idx].1);
                let kind = if present.contains(&e) {
                    present.remove(&e);
                    TopologyEventKind::Remove
                } else {
                    present.insert(e);
                    TopologyEventKind::Add
                };
                events.push(TopologyEvent {
                    time: gcs_clocks::Time::new(t),
                    kind,
                    edge: e,
                });
            }
            TopologySchedule::new(n, initial, events)
        })
}

proptest! {
    /// Replaying a schedule through DynamicGraph matches edges_at at every
    /// event boundary.
    #[test]
    fn dynamic_graph_replay_matches_schedule(sched in arb_schedule(5)) {
        let mut g = DynamicGraph::from_schedule_initial(&sched);
        prop_assert_eq!(
            g.edges().collect::<BTreeSet<_>>(),
            sched.edges_at(at(0.0))
        );
        for ev in sched.events() {
            g.apply(ev.kind, ev.edge, ev.time);
            prop_assert_eq!(
                g.edges().collect::<BTreeSet<_>>(),
                sched.edges_at(ev.time),
                "mismatch at {:?}", ev.time
            );
        }
    }

    /// `exists_throughout` agrees between schedule queries and replayed
    /// graph history.
    #[test]
    fn exists_throughout_agrees(sched in arb_schedule(4), t1 in 0.0f64..80.0, gap in 0.0f64..40.0) {
        let t2 = t1 + gap;

        let mut g = DynamicGraph::from_schedule_initial(&sched);
        for ev in sched.events() {
            g.apply(ev.kind, ev.edge, ev.time);
        }
        // Advance history to the horizon by a no-op removal guard: the
        // graph's `now` is the last event; only query if in range.
        if at(t2) <= g.now() {
            for i in 0..4usize {
                for j in i + 1..4 {
                    let e = Edge::between(i, j);
                    prop_assert_eq!(
                        g.existed_throughout(e, at(t1), at(t2)),
                        sched.exists_throughout(e, at(t1), at(t2)),
                        "edge {:?} interval [{}, {}]",
                        e,
                        t1,
                        t2
                    );
                }
            }
        }
    }

    /// Interval connectivity is monotone in the window length: a longer
    /// window keeps only a *subset* of edges alive throughout, so
    /// T-interval connectivity implies T'-interval connectivity for every
    /// shorter T'.
    #[test]
    fn interval_connectivity_monotone(sched in arb_schedule(4), t_small in 0.1f64..2.0, extra in 0.1f64..5.0) {
        let horizon = at(100.0);
        let t_large = t_small + extra;
        if connectivity::is_interval_connected(&sched, secs(t_large), horizon) {
            prop_assert!(
                connectivity::is_interval_connected(&sched, secs(t_small), horizon),
                "connected for T={t_large} but not shorter T={t_small}"
            );
        }
    }

    /// BFS distance satisfies the triangle inequality through any third
    /// node, and symmetric endpoints agree.
    #[test]
    fn bfs_triangle_inequality(seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 12;
        let edges = generators::gnp_connected(n, 0.15, &mut rng);
        let dist: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                distance::bfs_distance(n, edges.iter().copied(), node(i))
                    .into_iter()
                    .map(|d| d.expect("connected"))
                    .collect()
            })
            .collect();
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(dist[a][b], dist[b][a]);
                for c in 0..n {
                    prop_assert!(dist[a][b] <= dist[a][c] + dist[c][b]);
                }
            }
        }
    }

    /// Every lazy churn stream, collected, passes the eager validator
    /// (`TopologySchedule::new`: sorted times, no same-instant add+remove
    /// of one edge, adds-absent/removes-present) — and pulling it in
    /// arbitrary chunks yields the identical stream.
    #[test]
    fn churn_source_streams_are_valid_schedules(
        n in 6usize..24,
        chords in 1usize..10,
        seed in 0u64..500,
        horizon in 10.0f64..60.0,
        chunk in 0.5f64..7.0,
    ) {
        let mk = || ChurnSource::new(
            n, generators::path(n), chords, (2.0, 6.0), (1.0, 3.0), horizon, seed,
        );
        // collect_schedule runs the full validator; a violation panics.
        let sched = collect_schedule(mk());
        // Chunked pulls replay the identical stream.
        let mut src = mk();
        let initial = src.initial_edges();
        let mut events = Vec::new();
        let mut t = 0.0;
        while t < horizon + chunk {
            t += chunk;
            src.pull_until(at(t), &mut events);
        }
        prop_assert_eq!(TopologySchedule::new(n, initial, events), sched);
    }

    /// Mobility streams validate and replay identically through the
    /// ScheduleSource adapter round-trip.
    #[test]
    fn mobility_source_streams_are_valid_schedules(
        n in 4usize..20,
        seed in 0u64..200,
        radius in 0.1f64..0.5,
        backbone in any::<bool>(),
    ) {
        let sched = collect_schedule(MobilitySource::new(
            n, radius, 0.1, 1.0, 20.0, backbone, seed,
        ));
        // Round-trip through the adapter is the identity.
        prop_assert_eq!(collect_schedule(ScheduleSource::new(sched.clone())), sched);
    }

    /// Partition-and-heal streams validate for every legal parameter
    /// combination, and every cut heals within its cycle.
    #[test]
    fn partition_source_streams_are_valid_schedules(
        n in 4usize..32,
        cuts in 1usize..3,
        period in 2.0f64..8.0,
        horizon in 10.0f64..60.0,
    ) {
        let outage = period / 2.0;
        let sched = collect_schedule(PartitionSource::new(n, cuts, period, outage, horizon));
        let adds = sched.events().iter().filter(|e| e.kind == TopologyEventKind::Add).count();
        prop_assert_eq!(adds * 2, sched.events().len(), "every remove heals");
    }

    /// Flash-crowd streams validate; joins and leaves balance.
    #[test]
    fn flash_crowd_source_streams_are_valid_schedules(
        n in 16usize..64,
        hubs in 1usize..4,
        wave in 1usize..6,
        seed in 0u64..200,
    ) {
        let sched = collect_schedule(FlashCrowdSource::new(
            n, hubs, wave, 8.0, 2.0, 4.0, 50.0, seed,
        ));
        let adds = sched.events().iter().filter(|e| e.kind == TopologyEventKind::Add).count();
        prop_assert_eq!(adds * 2, sched.events().len(), "every join leaves");
    }

    /// Generated two-chain networks always have the claimed structure:
    /// exactly n edges, connected, and w0/wn are the only shared nodes.
    #[test]
    fn two_chain_structure(n in 6usize..64) {
        let tc = generators::TwoChain::new(n);
        let edges = tc.edges();
        prop_assert_eq!(edges.len(), n);
        prop_assert!(connectivity::is_connected(n, edges.iter().copied()));
        // Removing w0 and wn disconnects A-interior from B-interior.
        let filtered: Vec<Edge> = edges
            .iter()
            .copied()
            .filter(|e| !e.touches(tc.w0()) && !e.touches(tc.wn()))
            .collect();
        let a_mid = tc.a(1);
        let b_mid = tc.b(1);
        let d = distance::distance(n, filtered, a_mid, b_mid);
        prop_assert_eq!(d, None, "chains must be disjoint except at w0/wn");
    }
}
