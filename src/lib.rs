#![warn(missing_docs)]

//! # gradient-clock-sync
//!
//! A full reproduction of *Gradient Clock Synchronization in Dynamic
//! Networks* (Fabian Kuhn, Thomas Locher, Rotem Oshman; SPAA 2009 /
//! MIT-CSAIL-TR-2009-022) as a Rust workspace:
//!
//! * the dynamic gradient clock synchronization algorithm (Algorithm 2)
//!   with its aging per-edge skew budgets — [`core`],
//! * the network model of Section 3 as a deterministic discrete-event
//!   simulator (bounded drift, bounded delays, FIFO links, topology-change
//!   discovery within `D`) — [`sim`],
//! * dynamic graphs, churn models and T-interval connectivity — [`net`],
//! * the lower-bound constructions of Section 4 (delay masks, the Masking
//!   Lemma's α/β executions, Lemma 4.3 edge placement, the Theorem 4.1
//!   two-chain scenario) — [`lowerbound`],
//! * bounded exhaustive model checking of Algorithm 2 (Property 6.3 and
//!   the Definition 6.1 blocked predicate on every reachable state at
//!   small `n`), with ITF counterexample export and bit-deterministic
//!   replay into the engine — [`mc`],
//! * measurement, statistics and parallel sweeps — [`analysis`].
//!
//! ## Quickstart
//!
//! ```
//! use gradient_clock_sync::prelude::*;
//!
//! // Model: drift ρ = 1%, message delays ≤ T = 1, discovery ≤ D = 2.
//! let model = ModelParams::new(0.01, 1.0, 2.0);
//! let n = 8;
//! let params = AlgoParams::with_minimal_b0(model, n, 0.5);
//!
//! // An 8-node ring with worst-case delays and split drift.
//! let schedule = TopologySchedule::static_graph(n, generators::ring(n));
//! let mut sim = SimBuilder::topology(model, ScheduleSource::new(schedule))
//!     .drift_model(DriftModel::SplitExtremes, 100.0)
//!     .delay(DelayStrategy::Max)
//!     .build_with(|_| GradientNode::new(params));
//!
//! sim.run_until(Time::new(100.0));
//! let clocks = sim.logical_snapshot();
//! let skew = clocks.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
//!     - clocks.iter().cloned().fold(f64::INFINITY, f64::min);
//! assert!(skew <= params.global_skew_bound());
//! ```

pub use gcs_analysis as analysis;
pub use gcs_bench as bench;
pub use gcs_clocks as clocks;
pub use gcs_core as core;
pub use gcs_lowerbound as lowerbound;
pub use gcs_mc as mc;
pub use gcs_net as net;
pub use gcs_sim as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use gcs_analysis::{metrics, CsvSink, Recorder, SkewStream, Summary, Table};
    pub use gcs_bench::scenario::{Scenario, ScenarioReport};
    pub use gcs_clocks::{
        time::at, DriftModel, DriftSource, Duration, HardwareClock, ModelDrift, RateSchedule,
        ScheduleDrift, Time,
    };
    pub use gcs_core::baseline::MaxSyncNode;
    pub use gcs_core::{AlgoParams, BudgetPolicy, GradientNode, InvariantMonitor};
    pub use gcs_net::{
        churn, generators, greedy_worst_case, node, workloads, AdversarialChurnSource,
        BridgeAttack, Edge, NodeId, ScheduleSource, TopologySchedule, TopologySource,
    };
    pub use gcs_sim::{
        CrashRestartSource, DelayStrategy, DiscoveryDelay, FaultEvent, FaultKind, FaultPlan,
        FaultSource, ModelParams, SimBuilder, Simulator,
    };
}
