//! Offline stand-in for the `rand` crate (0.8-era API).
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the small slice of `rand` it actually uses:
//!
//! * [`Rng::gen_range`] over half-open and inclusive numeric ranges,
//! * [`Rng::gen_bool`],
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], a deterministic seedable generator.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! strong enough for simulation workloads, deterministic across platforms,
//! and dependency-free. It makes no cryptographic claims, exactly like
//! `StdRng`'s documented contract ("not guaranteed stable between
//! versions", "not a CSPRNG guarantee for seeded use").

/// A source of uniformly distributed 64-bit values.
///
/// Mirrors `rand_core::RngCore` far enough for this workspace: everything
/// is derived from [`RngCore::next_u64`].
pub trait RngCore {
    /// Return the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Return a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Keep the top 53 bits: the largest set a f64 mantissa resolves.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (including `&mut R`, so generators can be re-borrowed).
pub trait Rng: RngCore {
    /// Sample a uniform value from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the modulo bias
                // of a plain `% span` would be negligible here, but this is
                // just as cheap.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let x = self.start + (rng.next_f64() as f32) * (self.end - self.start);
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator: xoshiro256** with SplitMix64
    /// seed expansion.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should differ: {same}/64 collisions");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..=4.5);
            assert!((-2.5..=4.5).contains(&y));
            let z = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_whole_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn reborrow_works_through_generic_helpers() {
        fn take<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        // `&mut StdRng` must itself satisfy `Rng` for nested helpers.
        let _ = take(&mut rng);
        let _ = take(&mut &mut rng);
    }
}
