//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length specification for collection strategies.
///
/// Follows real proptest's conversions: a bare `usize` is an exact
/// length, `lo..hi` is half-open, `lo..=hi` inclusive.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
