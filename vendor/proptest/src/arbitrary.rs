//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Uniform over `[0, 1)` — finite by construction, which is what the
    /// simulation-style suites here actually want from `any::<f64>()`.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(0.0f64..1.0)
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u64>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
