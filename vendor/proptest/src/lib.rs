//! Offline stand-in for the `proptest` crate (1.x-era API).
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of `proptest` its test suites actually use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` and `boxed`,
//! * numeric-range, tuple, [`strategy::Just`] and [`arbitrary::any`]
//!   strategies,
//! * [`collection::vec`] for variable-length vectors,
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros,
//! * [`test_runner::ProptestConfig`] with `with_cases` and the
//!   `PROPTEST_CASES` environment override.
//!
//! Semantics are intentionally simpler than real proptest: inputs are
//! generated from a deterministic per-test seed and failures panic with
//! the case number — there is no shrinking and no persisted regression
//! corpus. For invariant-style suites (every case must pass) that is
//! behaviour-compatible.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary;
pub mod collection;

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of the `proptest::prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert a condition inside a [`proptest!`] test body.
///
/// Panics (failing the whole test, no shrinking) when the condition is
/// false. Accepts an optional format message like [`assert!`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert two values are equal inside a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert two values are distinct inside a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current generated case when an assumption does not hold.
///
/// Real proptest re-draws the case; this stand-in simply moves on to the
/// next iteration of the case loop via an early `return` from a
/// per-case closure — see [`proptest!`].
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice between several strategies producing the same type.
///
/// Only the unweighted form is supported: `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
///
/// Supports the optional `#![proptest_config(..)]` inner attribute and any
/// number of test functions whose arguments are `ident in strategy`
/// bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)
     $(
         $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                // Evaluate each strategy expression once, before the case
                // loop, binding it to the argument's own name (the inner
                // per-case `let` shadows it only within one iteration).
                $(let $arg = $strat;)+
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&$arg, &mut __rng);
                    )+
                    // Run the body in a closure so `prop_assume!` can skip
                    // a case with `return`; panics propagate with context.
                    let __run = || $body;
                    if let Err(panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(__run),
                    ) {
                        eprintln!(
                            "proptest case {}/{} failed in {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}
