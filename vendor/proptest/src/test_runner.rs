//! Per-test configuration and the deterministic test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, like real proptest; overridable via the
    /// `PROPTEST_CASES` environment variable.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Deterministic RNG driving value generation for one test function.
///
/// Seeded from the test's fully qualified name so every test draws an
/// independent, reproducible stream. Set `PROPTEST_SEED` to perturb all
/// streams at once (e.g. for a scheduled fuzz sweep).
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Build the RNG for the test named `name` (usually
    /// `module_path!() :: test_name`).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, mixed with an optional environment seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(x) = extra.parse::<u64>() {
                h ^= x.rotate_left(17);
            }
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
