//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::rc::Rc;

/// A recipe for generating values of an associated type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased, reference-counted strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice between boxed strategies (see [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union over `options`; each is drawn with equal probability.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
