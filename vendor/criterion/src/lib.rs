//! Offline stand-in for the `criterion` crate (0.5-era API).
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the benchmarking surface its `[[bench]]` targets use: [`Criterion`],
//! [`BenchmarkGroup`], `Bencher::{iter, iter_batched}`, [`Throughput`],
//! [`BatchSize`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — warm up, pick an iteration count
//! that fills the per-sample budget, time `sample_size` samples with
//! `std::time::Instant`, and print min/mean/max per iteration. There are
//! no plots, no statistical regression analysis and no saved baselines,
//! but relative comparisons between runs on the same machine remain
//! meaningful.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `Bencher::iter_batched` amortises setup cost. The stand-in times
/// one routine call per setup regardless of variant, which matches
/// `LargeInput` — the only variant this workspace uses in anger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup re-run for every sample).
    LargeInput,
    /// Fresh input for every single iteration.
    PerIteration,
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many abstract elements (e.g. events).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }
}

/// Collected timing for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Copy, Debug)]
struct Sampled {
    min: f64,
    mean: f64,
    max: f64,
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, s: Sampled, throughput: Option<Throughput>) {
    let mut line = format!(
        "{id:<40} [{} {} {}]",
        format_time(s.min),
        format_time(s.mean),
        format_time(s.max)
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        if s.mean > 0.0 {
            let rate = count as f64 / (s.mean / 1_000_000_000.0);
            line.push_str(&format!("  {rate:.3e} {unit}"));
        }
    }
    println!("{line}");
}

/// Times closures handed to it by benchmark definitions.
pub struct Bencher<'a> {
    settings: &'a Settings,
    result: Option<Sampled>,
}

impl Bencher<'_> {
    /// Time `routine`, called back-to-back in timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a single-iteration duration.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.settings.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample =
            self.settings.measurement_time.as_secs_f64() / self.settings.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let mut samples = Vec::with_capacity(self.settings.sample_size);
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        self.result = Some(summarise(&samples));
    }

    /// Time `routine` on inputs produced by `setup`; `setup` is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warmup round, untimed.
        black_box(routine(setup()));
        let mut samples = Vec::with_capacity(self.settings.sample_size);
        for _ in 0..self.settings.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_secs_f64() * 1e9);
        }
        self.result = Some(summarise(&samples));
    }
}

fn summarise(samples: &[f64]) -> Sampled {
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for &s in samples {
        min = min.min(s);
        max = max.max(s);
        sum += s;
    }
    Sampled {
        min,
        mean: sum / samples.len() as f64,
        max,
    }
}

/// Entry point handed to `criterion_group!` target functions.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.settings, &id.into(), f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings: Settings::default(),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(settings: &Settings, id: &str, mut f: F) {
    let mut bencher = Bencher {
        settings,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(sampled) => report(id, sampled, settings.throughput),
        None => println!("{id:<40} [no measurement recorded]"),
    }
}

/// A group of benchmarks sharing settings and a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.settings.sample_size = n;
        self
    }

    /// Set the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Record the units of work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.settings.throughput = Some(t);
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&self.settings, &full, f);
        self
    }

    /// Close the group. (No-op beyond marking intent, as in criterion.)
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`) that this
            // stand-in does not need; accept and ignore them.
            $($group();)+
        }
    };
}
