//! Mobile ad-hoc network: clock synchronization under continuous topology
//! churn from node mobility, behind the [`Scenario`] experiment surface.
//!
//! Nodes move through the unit square with random-waypoint mobility; links
//! exist while nodes are within radio range. Edges therefore appear and
//! disappear continuously — the dynamic setting the paper is about. A thin
//! static backbone keeps the network connected (the model's interval
//! connectivity assumption).
//!
//! Run with: `cargo run --release --example mobile_adhoc`

use gcs_net::ScheduleSource;
use gradient_clock_sync::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The mobility workload: random-waypoint motion, geometric links.
struct MobileAdhoc {
    n: usize,
    horizon: f64,
    seed: u64,
}

impl Scenario for MobileAdhoc {
    fn id(&self) -> &'static str {
        "mobile_adhoc"
    }
    fn title(&self) -> &'static str {
        "skew under continuous mobility-driven churn"
    }
    fn claim(&self) -> &'static str {
        "§3 model generality — arbitrary churn within interval connectivity"
    }
    fn run_scenario(&self) -> ScenarioReport {
        let model = ModelParams::new(0.01, 1.0, 2.0);
        let params = AlgoParams::with_minimal_b0(model, self.n, 0.5);
        let mut rep = ScenarioReport::new();

        let mut rng = StdRng::seed_from_u64(self.seed);
        let schedule = churn::mobility(
            self.n,
            /* radius */ 0.3,
            /* speed */ 0.02,
            /* sample_dt */ 1.0,
            self.horizon,
            /* backbone */ true,
            &mut rng,
        );
        let adds = schedule
            .events()
            .iter()
            .filter(|e| matches!(e.kind, gradient_clock_sync::net::TopologyEventKind::Add))
            .count();
        let removes = schedule.events().len() - adds;
        rep.note(format!(
            "{} nodes, horizon {}s; churn: {adds} link formations, {removes} link failures",
            self.n, self.horizon
        ));

        let mut sim = SimBuilder::topology(model, ScheduleSource::new(schedule))
            .drift_model(DriftModel::RandomWalk { step: 4.0 }, self.horizon)
            .delay(DelayStrategy::Uniform { lo: 0.1, hi: 1.0 })
            .seed(self.seed)
            .build_with(|_| GradientNode::new(params));

        let mut recorder = Recorder::new(2.0).with_monitor(InvariantMonitor::new(params));
        recorder.run(&mut sim, at(self.horizon));

        // Summaries over the second half (after initial stabilization).
        let steady: Vec<_> = recorder
            .samples()
            .iter()
            .filter(|s| s.t >= self.horizon / 2.0)
            .collect();
        let global: Vec<f64> = steady.iter().map(|s| s.global_skew).collect();
        let local: Vec<f64> = steady.iter().map(|s| s.max_local_skew).collect();
        let gs = Summary::of(&global);
        let ls = Summary::of(&local);

        let mut table = Table::new(
            "steady-state skew (second half of the run)",
            &["metric", "mean", "p95", "max", "bound"],
        );
        table.row(&[
            "global skew".into(),
            format!("{:.3}", gs.mean),
            format!("{:.3}", gs.p95),
            format!("{:.3}", gs.max),
            format!("{:.3}", params.global_skew_bound()),
        ]);
        table.row(&[
            "worst local skew".into(),
            format!("{:.3}", ls.mean),
            format!("{:.3}", ls.p95),
            format!("{:.3}", ls.max),
            // Local skew on *young* edges is only bounded by the dynamic
            // function; report the fresh-edge bound for context.
            format!("{:.3}", params.dynamic_local_skew(0.0)),
        ]);
        rep.table(table);

        recorder.monitor().unwrap().assert_clean();
        rep.note(format!(
            "invariants held over {} samples despite {} topology changes; messages: {} sent, \
             {} delivered, {} lost to mobility",
            recorder.monitor().unwrap().snapshots(),
            adds + removes,
            sim.stats().messages_sent,
            sim.stats().messages_delivered,
            sim.stats().total_dropped(),
        ));
        rep
    }
}

fn main() {
    let s = MobileAdhoc {
        n: 24,
        horizon: 500.0,
        seed: 11,
    };
    println!("[{}] {} ({})\n", s.id(), s.title(), s.claim());
    s.run_scenario().print();
}
