//! Mobile ad-hoc network: clock synchronization under continuous topology
//! churn from node mobility.
//!
//! Nodes move through the unit square with random-waypoint mobility; links
//! exist while nodes are within radio range. Edges therefore appear and
//! disappear continuously — the dynamic setting the paper is about. A thin
//! static backbone keeps the network connected (the model's interval
//! connectivity assumption).
//!
//! Run with: `cargo run --release --example mobile_adhoc`

use gradient_clock_sync::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = ModelParams::new(0.01, 1.0, 2.0);
    let n = 24;
    let horizon = 500.0;
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);

    let mut rng = StdRng::seed_from_u64(11);
    let schedule = churn::mobility(
        n, /* radius */ 0.3, /* speed */ 0.02, /* sample_dt */ 1.0, horizon,
        /* backbone */ true, &mut rng,
    );
    let adds = schedule
        .events()
        .iter()
        .filter(|e| matches!(e.kind, gradient_clock_sync::net::TopologyEventKind::Add))
        .count();
    let removes = schedule.events().len() - adds;
    println!("mobile ad-hoc network: {n} nodes, horizon {horizon}s");
    println!("  churn: {adds} link formations, {removes} link failures");

    let mut sim = SimBuilder::new(model, schedule)
        .drift(DriftModel::RandomWalk { step: 4.0 }, horizon)
        .delay(DelayStrategy::Uniform { lo: 0.1, hi: 1.0 })
        .seed(11)
        .build_with(|_| GradientNode::new(params));

    let mut recorder = Recorder::new(2.0).with_monitor(InvariantMonitor::new(params));
    recorder.run(&mut sim, at(horizon));

    // Summaries over the second half (after initial stabilization).
    let steady: Vec<_> = recorder
        .samples()
        .iter()
        .filter(|s| s.t >= horizon / 2.0)
        .collect();
    let global: Vec<f64> = steady.iter().map(|s| s.global_skew).collect();
    let local: Vec<f64> = steady.iter().map(|s| s.max_local_skew).collect();
    let gs = Summary::of(&global);
    let ls = Summary::of(&local);

    let mut table = Table::new(
        "steady-state skew (second half of the run)",
        &["metric", "mean", "p95", "max", "bound"],
    );
    table.row(&[
        "global skew".into(),
        format!("{:.3}", gs.mean),
        format!("{:.3}", gs.p95),
        format!("{:.3}", gs.max),
        format!("{:.3}", params.global_skew_bound()),
    ]);
    table.row(&[
        "worst local skew".into(),
        format!("{:.3}", ls.mean),
        format!("{:.3}", ls.p95),
        format!("{:.3}", ls.max),
        // Local skew on *young* edges is only bounded by the dynamic
        // function; report the fresh-edge bound for context.
        format!("{:.3}", params.dynamic_local_skew(0.0)),
    ]);
    table.print();

    recorder.monitor().unwrap().assert_clean();
    println!();
    println!(
        "invariants held over {} samples despite {} topology changes; messages: {} sent, {} delivered, {} lost to mobility",
        recorder.monitor().unwrap().snapshots(),
        adds + removes,
        sim.stats().messages_sent,
        sim.stats().messages_delivered,
        sim.stats().total_dropped(),
    );
}
