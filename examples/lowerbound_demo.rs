//! Watch the lower-bound adversary at work.
//!
//! The Masking Lemma's execution β lets nodes far (in *flexible* distance)
//! from the reference node `u` run fast until each layer has banked `T` of
//! extra hardware time per hop — while delivering every message at a time
//! that makes the execution indistinguishable from the all-rates-1
//! execution α. The algorithm cannot know anything is wrong, and ends up
//! with `Θ(T·d)` of logical skew laid out as a staircase over the layers.
//!
//! This demo prints that staircase as it forms.
//!
//! Run with: `cargo run --release --example lowerbound_demo`

use gradient_clock_sync::lowerbound::Theorem41Scenario;
use gradient_clock_sync::prelude::*;

fn main() {
    let rho = 0.05; // faster ramps => shorter demo
    let big_t = 1.0;
    let n = 24;
    let sc = Theorem41Scenario::new(n, 2.0, rho, big_t);
    let model = ModelParams::new(rho, big_t, 2.0);
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);

    println!(
        "two-chain network, n = {n}; u = {:?}, v = {:?}, flexible distance d = {}",
        sc.u(),
        sc.v(),
        sc.flexible_distance_uv()
    );
    println!(
        "lemma: after t = {:.0}, skew(u,v) >= T·d/4 = {:.2}\n",
        sc.ready_time(),
        sc.skew_bound()
    );

    let mut sim = SimBuilder::new(model, sc.schedule())
        .clocks(sc.beta_clocks())
        .delay(sc.beta_delays())
        .build_with(|_| GradientNode::new(params));

    let max_layer = *sc.layers.iter().max().unwrap();
    let t_end = sc.ready_time() + 10.0;
    let steps = 6;
    for step in 0..=steps {
        let t = t_end * step as f64 / steps as f64;
        if step > 0 {
            sim.run_until(at(t));
        }
        println!("t = {t:7.1}   (logical clock − real time), averaged per layer:");
        for layer in 0..=max_layer {
            let members: Vec<usize> = (0..n).filter(|&i| sc.layers[i] == layer).collect();
            let avg: f64 = members
                .iter()
                .map(|&i| sim.logical(node(i)) - t)
                .sum::<f64>()
                / members.len() as f64;
            let bar_len = (avg / big_t * 3.0).round().max(0.0) as usize;
            println!(
                "  layer {layer:2} ({:2} nodes)  {:>7.2}  {}",
                members.len(),
                avg,
                "#".repeat(bar_len.min(72))
            );
        }
        let skew = (sim.logical(sc.u()) - sim.logical(sc.v())).abs();
        println!("  skew(u, v) = {skew:.3}\n");
    }

    let final_skew = (sim.logical(sc.u()) - sim.logical(sc.v())).abs();
    println!(
        "final skew(u,v) = {final_skew:.2} >= lemma bound {:.2}: {}",
        sc.skew_bound(),
        if final_skew >= sc.skew_bound() {
            "reproduced"
        } else {
            "NOT reproduced (?)"
        }
    );
    assert!(final_skew >= sc.skew_bound());
}
