//! Watch the lower-bound adversary at work, behind the [`Scenario`]
//! experiment surface.
//!
//! The Masking Lemma's execution β lets nodes far (in *flexible* distance)
//! from the reference node `u` run fast until each layer has banked `T` of
//! extra hardware time per hop — while delivering every message at a time
//! that makes the execution indistinguishable from the all-rates-1
//! execution α. The algorithm cannot know anything is wrong, and ends up
//! with `Θ(T·d)` of logical skew laid out as a staircase over the layers.
//!
//! This demo prints that staircase as it forms.
//!
//! Run with: `cargo run --release --example lowerbound_demo`

use gcs_clocks::ScheduleDrift;
use gcs_net::ScheduleSource;
use gradient_clock_sync::lowerbound::Theorem41Scenario;
use gradient_clock_sync::prelude::*;

/// The lower-bound demo workload: the two-chain β execution.
struct LowerboundDemo {
    n: usize,
    rho: f64,
    big_t: f64,
}

impl Scenario for LowerboundDemo {
    fn id(&self) -> &'static str {
        "lowerbound_demo"
    }
    fn title(&self) -> &'static str {
        "the β adversary builds a T·d/4 skew staircase"
    }
    fn claim(&self) -> &'static str {
        "Lemma 4.2 / Theorem 4.1 — indistinguishable executions force skew"
    }
    fn run_scenario(&self) -> ScenarioReport {
        let sc = Theorem41Scenario::new(self.n, 2.0, self.rho, self.big_t);
        let model = ModelParams::new(self.rho, self.big_t, 2.0);
        let params = AlgoParams::with_minimal_b0(model, self.n, 0.5);
        let mut rep = ScenarioReport::new();

        rep.note(format!(
            "two-chain network, n = {}; u = {:?}, v = {:?}, flexible distance d = {}",
            self.n,
            sc.u(),
            sc.v(),
            sc.flexible_distance_uv()
        ));
        rep.note(format!(
            "lemma: after t = {:.0}, skew(u,v) >= T·d/4 = {:.2}",
            sc.ready_time(),
            sc.skew_bound()
        ));

        let mut sim = SimBuilder::topology(model, ScheduleSource::new(sc.schedule()))
            .drift(ScheduleDrift::new(sc.beta_clocks()))
            .delay(sc.beta_delays())
            .build_with(|_| GradientNode::new(params));

        let max_layer = *sc.layers.iter().max().unwrap();
        let t_end = sc.ready_time() + 10.0;
        let steps = 6;
        for step in 0..=steps {
            let t = t_end * step as f64 / steps as f64;
            if step > 0 {
                sim.run_until(at(t));
            }
            let mut table = Table::new(
                format!("t = {t:.1} — (logical clock − real time), averaged per layer"),
                &["layer", "nodes", "avg offset", "staircase"],
            );
            for layer in 0..=max_layer {
                let members: Vec<usize> = (0..self.n).filter(|&i| sc.layers[i] == layer).collect();
                let avg: f64 = members
                    .iter()
                    .map(|&i| sim.logical(node(i)) - t)
                    .sum::<f64>()
                    / members.len() as f64;
                let bar_len = (avg / self.big_t * 3.0).round().max(0.0) as usize;
                table.row(&[
                    format!("{layer}"),
                    format!("{}", members.len()),
                    format!("{avg:.2}"),
                    "#".repeat(bar_len.min(72)),
                ]);
            }
            let skew = (sim.logical(sc.u()) - sim.logical(sc.v())).abs();
            table.row(&[
                "skew(u,v)".into(),
                String::new(),
                format!("{skew:.3}"),
                String::new(),
            ]);
            rep.table(table);
        }

        let final_skew = (sim.logical(sc.u()) - sim.logical(sc.v())).abs();
        rep.note(format!(
            "final skew(u,v) = {final_skew:.2} >= lemma bound {:.2}: {}",
            sc.skew_bound(),
            if final_skew >= sc.skew_bound() {
                "reproduced"
            } else {
                "NOT reproduced (?)"
            }
        ));
        assert!(final_skew >= sc.skew_bound());
        rep
    }
}

fn main() {
    // Faster ramps (higher rho) keep the demo short.
    let s = LowerboundDemo {
        n: 24,
        rho: 0.05,
        big_t: 1.0,
    };
    println!("[{}] {} ({})\n", s.id(), s.title(), s.claim());
    s.run_scenario().print();
}
