//! The Figure 1 story, live: a new edge appears between two far-apart
//! nodes carrying large skew, and the algorithm grinds it down without
//! ever violating the budgets of old edges. Implements the [`Scenario`]
//! experiment surface.
//!
//! To make the effect visible at demo scale we use the cluster-merge
//! construction: two halves of the network evolve disconnected — one on
//! fast hardware, one on slow — so their clocks honestly drift apart by
//! `2ρ·t`; the bridge then carries that skew.
//!
//! Run with: `cargo run --release --example edge_insertion`

use gcs_clocks::ScheduleDrift;
use gcs_net::ScheduleSource;
use gradient_clock_sync::net::schedule::add_at;
use gradient_clock_sync::prelude::*;

/// The edge-insertion workload: cluster merge at demo scale.
struct EdgeInsertion {
    n: usize,
    rho: f64,
}

impl Scenario for EdgeInsertion {
    fn id(&self) -> &'static str {
        "edge_insertion"
    }
    fn title(&self) -> &'static str {
        "skew decay on a freshly inserted high-skew edge"
    }
    fn claim(&self) -> &'static str {
        "Corollary 6.13 / Figure 1 — new edges harden gradually"
    }
    fn run_scenario(&self) -> ScenarioReport {
        let model = ModelParams::new(self.rho, 1.0, 2.0);
        let n = self.n;
        let half = n / 2;
        let params = AlgoParams::with_minimal_b0(model, n, 0.5);
        let mut rep = ScenarioReport::new();

        // Two disjoint half-paths; the bridge joins them at t_bridge with
        // accumulated skew ≈ 2ρ·t_bridge ≈ 4x the stable bound.
        let target_skew = 4.0 * params.stable_local_skew();
        let t_bridge = target_skew / (2.0 * self.rho);
        let horizon = t_bridge + 3.0 * params.w();
        let bridge = Edge::between(half - 1, half);
        let mut old_edges: Vec<Edge> = (0..half - 1).map(|i| Edge::between(i, i + 1)).collect();
        old_edges.extend((half..n - 1).map(|i| Edge::between(i, i + 1)));
        let schedule = TopologySchedule::static_graph(n, old_edges.clone())
            .with_extra_events(vec![add_at(t_bridge, bridge)]);
        let clocks: Vec<HardwareClock> = (0..n)
            .map(|i| {
                HardwareClock::constant(
                    if i < half {
                        1.0 + self.rho
                    } else {
                        1.0 - self.rho
                    },
                    self.rho,
                )
            })
            .collect();

        let mut sim = SimBuilder::topology(model, ScheduleSource::new(schedule))
            .drift(ScheduleDrift::new(clocks))
            .delay(DelayStrategy::Max)
            .build_with(|_| GradientNode::new(params));

        sim.run_until(at(t_bridge));
        let initial = (sim.logical(bridge.lo()) - sim.logical(bridge.hi())).abs();
        rep.note(format!("bridge {bridge} inserted at t = {t_bridge:.0}"));
        rep.note(format!("initial skew on the new edge: {initial:.3}"));
        rep.note(format!(
            "stable local skew bound: {:.3}; stabilization window W: {:.1}",
            params.stable_local_skew(),
            params.w()
        ));

        let mut table = Table::new(
            "skew decay on the new edge (the Figure 1 story)",
            &[
                "edge age",
                "bridge skew",
                "s(n, age) bound",
                "worst old edge",
            ],
        );
        let mut t = t_bridge;
        let step = params.w() / 6.0;
        let mut settled_at = None;
        let mut rows = Vec::new();
        while t < horizon {
            t += step;
            sim.run_until(at(t));
            let age = t - t_bridge;
            let bridge_skew = (sim.logical(bridge.lo()) - sim.logical(bridge.hi())).abs();
            let worst_old = old_edges
                .iter()
                .map(|e| (sim.logical(e.lo()) - sim.logical(e.hi())).abs())
                .fold(0.0, f64::max);
            table.row(&[
                format!("{age:.0}"),
                format!("{bridge_skew:.3}"),
                format!("{:.3}", params.dynamic_local_skew(age)),
                format!("{worst_old:.3}"),
            ]);
            rows.push(vec![
                age,
                bridge_skew,
                params.dynamic_local_skew(age),
                worst_old,
            ]);
            if bridge_skew <= params.stable_local_skew() {
                settled_at.get_or_insert(age);
            }
            assert!(
                worst_old <= params.stable_local_skew() + 1e-6,
                "old edge violated its budget"
            );
        }
        rep.table(table);
        rep.csv(
            "edge_insertion_decay.csv",
            &["age", "bridge_skew", "envelope", "worst_old_edge"],
            rows,
        );
        match settled_at {
            Some(age) => rep.note(format!(
                "the bridge settled below the stable bound after ~{age:.0}s; old edges never \
                 exceeded it."
            )),
            None => rep.note("the bridge had not settled within the horizon (increase it)."),
        };
        rep
    }
}

fn main() {
    let s = EdgeInsertion { n: 32, rho: 0.05 };
    println!("[{}] {} ({})\n", s.id(), s.title(), s.claim());
    s.run_scenario().print();
}
