//! TDMA slot scheduling — the motivating application from the paper's
//! introduction, behind the [`Scenario`] experiment surface.
//!
//! In a wireless network, interference is local: a TDMA schedule only needs
//! the clocks of *neighboring* nodes to agree. Each node divides its
//! logical clock into frames of `SLOTS` slots and transmits during its own
//! slot. Two neighbors collide when their transmission windows overlap in
//! real time, which happens exactly when their logical skew exceeds the
//! guard band left around each slot.
//!
//! This example runs Algorithm 2 on a random geometric network, derives
//! the minimum guard band that would have avoided all collisions (the peak
//! neighbor skew), and contrasts it with the network-wide skew a
//! global-skew-only deployment would have to budget for.
//!
//! Run with: `cargo run --release --example tdma`

use gcs_net::ScheduleSource;
use gradient_clock_sync::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLOTS: usize = 8;
const SLOT_LEN: f64 = 1.0;
/// Nodes transmit only during the first half of their slot; the second
/// half is the guard band absorbing neighbor skew.
const GUARD: f64 = SLOT_LEN / 2.0;

/// The TDMA workload: geometric network, random-walk drift, random delays.
struct Tdma {
    n: usize,
    horizon: f64,
    seed: u64,
}

impl Scenario for Tdma {
    fn id(&self) -> &'static str {
        "tdma"
    }
    fn title(&self) -> &'static str {
        "TDMA guard bands sized by local, not global, skew"
    }
    fn claim(&self) -> &'static str {
        "§1 motivation — the gradient property is what TDMA actually needs"
    }
    fn run_scenario(&self) -> ScenarioReport {
        let model = ModelParams::new(0.01, 1.0, 2.0);
        let params = AlgoParams::with_minimal_b0(model, self.n, 0.5);
        let mut rep = ScenarioReport::new();

        // Random geometric layout: nodes within radius 0.35 interfere.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let positions = generators::random_positions(self.n, &mut rng);
        let mut edges = generators::geometric(&positions, 0.35);
        // Keep the deployment connected (the model requires it).
        for e in generators::path(self.n) {
            if !edges.contains(&e) {
                edges.push(e);
            }
        }
        let schedule = TopologySchedule::static_graph(self.n, edges.clone());
        let mut sim = SimBuilder::topology(model, ScheduleSource::new(schedule))
            .drift_model(DriftModel::RandomWalk { step: 5.0 }, self.horizon)
            .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
            .seed(self.seed)
            .build_with(|_| GradientNode::new(params));

        // Let the budgets settle, then observe a long steady-state window.
        let settle = params.w() + params.budget_settle_age() / (1.0 - model.rho);
        sim.run_until(at(settle));
        rep.note(format!(
            "{} nodes, {} links; frame = {SLOTS} slots x {SLOT_LEN}s, settled after t = {settle:.0}",
            self.n,
            edges.len()
        ));

        let mut peak_neighbor_skew: f64 = 0.0;
        let mut peak_global_skew: f64 = 0.0;
        let mut collisions = 0u64;
        let mut checks = 0u64;
        let mut t = settle;
        while t < self.horizon + settle {
            t += 0.5;
            sim.run_until(at(t));
            let clocks = sim.logical_snapshot();
            peak_global_skew = peak_global_skew.max(metrics::global_skew(&clocks));
            for e in sim.graph().edges() {
                let skew = (clocks[e.lo().index()] - clocks[e.hi().index()]).abs();
                peak_neighbor_skew = peak_neighbor_skew.max(skew);
                // Neighbors sharing a slot index always clash — that is a
                // slot *assignment* (coloring) issue, not a synchronization
                // one; only differently-slotted pairs test the clocks.
                if e.lo().index() % SLOTS == e.hi().index() % SLOTS {
                    continue;
                }
                // A node transmits when its own logical clock sits inside
                // the transmit window (first SLOT_LEN − GUARD) of its slot.
                let transmitting = |w: NodeId, l: f64| -> bool {
                    let in_frame = l.rem_euclid(SLOT_LEN * SLOTS as f64);
                    let slot = (in_frame / SLOT_LEN).floor() as usize;
                    let in_slot = in_frame - slot as f64 * SLOT_LEN;
                    slot == w.index() % SLOTS && in_slot < SLOT_LEN - GUARD
                };
                checks += 1;
                if transmitting(e.lo(), clocks[e.lo().index()])
                    && transmitting(e.hi(), clocks[e.hi().index()])
                {
                    collisions += 1;
                }
            }
        }

        let mut table = Table::new("interference budget", &["quantity", "value"]);
        table.row(&[
            "peak neighbor (local) skew".into(),
            format!("{peak_neighbor_skew:.3}"),
        ]);
        table.row(&[
            "stable local skew bound".into(),
            format!("{:.3}", params.stable_local_skew()),
        ]);
        table.row(&[
            "peak network (global) skew".into(),
            format!("{peak_global_skew:.3}"),
        ]);
        table.row(&[
            "global skew bound G(n)".into(),
            format!("{:.3}", params.global_skew_bound()),
        ]);
        table.row(&[
            format!("slot collisions ({checks} link-checks)"),
            format!("{collisions}"),
        ]);
        rep.table(table);

        rep.note(format!(
            "gradient property: a guard band of {peak_neighbor_skew:.2}s per slot suffices for \
             neighbors, even though clocks across the whole network disagree by up to \
             {peak_global_skew:.2}s."
        ));
        assert!(
            peak_neighbor_skew <= params.stable_local_skew(),
            "local skew exceeded the paper's stable bound"
        );
        assert_eq!(
            collisions, 0,
            "with skew below the guard band, differently-slotted neighbors must never overlap"
        );
        rep
    }
}

fn main() {
    let s = Tdma {
        n: 32,
        horizon: 400.0,
        seed: 7,
    };
    println!("[{}] {} ({})\n", s.id(), s.title(), s.claim());
    s.run_scenario().print();
}
