//! Quickstart: synchronize a small dynamic network and print the skews
//! against the paper's bounds.
//!
//! Run with: `cargo run --release --example quickstart`

use gradient_clock_sync::prelude::*;

fn main() {
    // Environment: drift ρ = 1%, message delay bound T = 1s, topology
    // changes discovered within D = 2s.
    let model = ModelParams::new(0.01, 1.0, 2.0);
    let n = 16;
    let horizon = 300.0;

    // Algorithm parameters: resend every ΔH = 0.5 subjective seconds,
    // smallest admissible stable budget B0.
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);
    println!("Algorithm 2 on a {n}-node ring");
    println!("  rho = {}, T = {}, D = {}", model.rho, model.t, model.d);
    println!(
        "  B0 = {}, tau = {:.3}, W = {:.1}",
        params.b0,
        params.tau(),
        params.w()
    );
    println!(
        "  global skew bound G(n)   = {:.2}",
        params.global_skew_bound()
    );
    println!(
        "  stable local skew bound  = {:.2}",
        params.stable_local_skew()
    );
    println!();

    // A ring with adversarial (maximum) message delays and half the nodes
    // running at 1−ρ, half at 1+ρ.
    let schedule = TopologySchedule::static_graph(n, generators::ring(n));
    let mut sim = SimBuilder::new(model, schedule)
        .drift(DriftModel::SplitExtremes, horizon)
        .delay(DelayStrategy::Max)
        .build_with(|_| GradientNode::new(params));

    // Record the execution, checking invariants along the way.
    let mut recorder = Recorder::new(1.0).with_monitor(InvariantMonitor::new(params));
    recorder.run(&mut sim, at(horizon));

    let mut table = Table::new("measured vs. guaranteed", &["metric", "measured", "bound"]);
    table.row(&[
        "peak global skew".into(),
        format!("{:.3}", recorder.peak_global_skew()),
        format!("{:.3}", params.global_skew_bound()),
    ]);
    table.row(&[
        "final worst local skew".into(),
        format!("{:.3}", recorder.samples().last().unwrap().max_local_skew),
        format!("{:.3}", params.dynamic_local_skew(horizon)),
    ]);
    table.print();
    println!();

    let monitor = recorder.monitor().unwrap();
    monitor.assert_clean();
    println!(
        "all invariants held over {} samples (rate >= 1/2, Lmax >= L, skew bounds)",
        monitor.snapshots()
    );
    println!();
    println!("final logical clocks at t = {horizon}:");
    for (i, l) in sim.logical_snapshot().iter().enumerate() {
        println!("  node {i:2}: L = {l:.4}");
    }
}
