//! Quickstart: synchronize a small dynamic network and print the skews
//! against the paper's bounds.
//!
//! Like the E1–E10 experiments, the workload implements the
//! [`Scenario`] trait, so the same entry point could be driven by any
//! harness that understands `ScenarioReport`s.
//!
//! Run with: `cargo run --release --example quickstart`

use gcs_net::ScheduleSource;
use gradient_clock_sync::prelude::*;

/// The quickstart workload: Algorithm 2 on a 16-node ring with split
/// drift and worst-case delays.
struct Quickstart {
    n: usize,
    horizon: f64,
}

impl Scenario for Quickstart {
    fn id(&self) -> &'static str {
        "quickstart"
    }
    fn title(&self) -> &'static str {
        "Algorithm 2 on a ring: measured vs guaranteed skews"
    }
    fn claim(&self) -> &'static str {
        "Theorems 6.9 and 6.12 — global and stable local skew bounds"
    }
    fn run_scenario(&self) -> ScenarioReport {
        let model = ModelParams::new(0.01, 1.0, 2.0);
        let params = AlgoParams::with_minimal_b0(model, self.n, 0.5);
        let mut rep = ScenarioReport::new();
        rep.note(format!(
            "rho = {}, T = {}, D = {}; B0 = {}, tau = {:.3}, W = {:.1}",
            model.rho,
            model.t,
            model.d,
            params.b0,
            params.tau(),
            params.w()
        ));

        // A ring with adversarial (maximum) message delays and half the
        // nodes running at 1−ρ, half at 1+ρ.
        let schedule = TopologySchedule::static_graph(self.n, generators::ring(self.n));
        let mut sim = SimBuilder::topology(model, ScheduleSource::new(schedule))
            .drift_model(DriftModel::SplitExtremes, self.horizon)
            .delay(DelayStrategy::Max)
            .build_with(|_| GradientNode::new(params));

        // Record the execution, checking invariants along the way.
        let mut recorder = Recorder::new(1.0).with_monitor(InvariantMonitor::new(params));
        recorder.run(&mut sim, at(self.horizon));

        let mut table = Table::new("measured vs. guaranteed", &["metric", "measured", "bound"]);
        table.row(&[
            "peak global skew".into(),
            format!("{:.3}", recorder.peak_global_skew()),
            format!("{:.3}", params.global_skew_bound()),
        ]);
        table.row(&[
            "final worst local skew".into(),
            format!("{:.3}", recorder.samples().last().unwrap().max_local_skew),
            format!("{:.3}", params.dynamic_local_skew(self.horizon)),
        ]);
        rep.table(table);

        let monitor = recorder.monitor().unwrap();
        monitor.assert_clean();
        rep.note(format!(
            "all invariants held over {} samples (rate >= 1/2, Lmax >= L, skew bounds)",
            monitor.snapshots()
        ));
        for (i, l) in sim.logical_snapshot().iter().enumerate() {
            rep.note(format!("node {i:2}: L = {l:.4} at t = {}", self.horizon));
        }
        rep
    }
}

fn main() {
    let s = Quickstart {
        n: 16,
        horizon: 300.0,
    };
    println!("[{}] {} ({})\n", s.id(), s.title(), s.claim());
    s.run_scenario().print();
}
