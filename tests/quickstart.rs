//! The README/lib.rs quickstart scenario as a plain integration test.
//!
//! The same scenario exists as a doctest on `gradient_clock_sync`'s crate
//! docs, but doctests are easy to lose (they vanish if the doc comment is
//! reworded, and some CI setups skip them). This keeps the headline paper
//! claim — the global skew of an 8-node ring stays within
//! `global_skew_bound()` — exercised by `cargo test` proper.

use gcs_net::ScheduleSource;
use gradient_clock_sync::prelude::*;

#[test]
fn quickstart_ring_respects_global_skew_bound() {
    // Model: drift ρ = 1%, message delays ≤ T = 1, discovery ≤ D = 2.
    let model = ModelParams::new(0.01, 1.0, 2.0);
    let n = 8;
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);

    // An 8-node ring with worst-case delays and split drift.
    let schedule = TopologySchedule::static_graph(n, generators::ring(n));
    let mut sim = SimBuilder::topology(model, ScheduleSource::new(schedule))
        .drift_model(DriftModel::SplitExtremes, 100.0)
        .delay(DelayStrategy::Max)
        .build_with(|_| GradientNode::new(params));

    sim.run_until(Time::new(100.0));
    let clocks = sim.logical_snapshot();
    let max = clocks.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = clocks.iter().cloned().fold(f64::INFINITY, f64::min);
    let skew = max - min;

    assert!(
        skew <= params.global_skew_bound(),
        "global skew {skew} exceeds bound {}",
        params.global_skew_bound()
    );
    // The run actually advanced: logical clocks track real time to within
    // the drift envelope, so after 100s they must be well past zero.
    assert!(min > 50.0, "clocks barely advanced: min = {min}");
}
