//! Integration tests pinning the environment axioms of Section 3.2 as
//! observed *through the public API*, with the real algorithm running —
//! the engine-level tests in `gcs-sim` check the same properties with a
//! toy protocol.

use gcs_net::ScheduleSource;
use gradient_clock_sync::net::schedule::remove_at;
use gradient_clock_sync::prelude::*;
use gradient_clock_sync::sim::engine::DiscoveryDelay;

fn model() -> ModelParams {
    ModelParams::new(0.01, 1.0, 2.0)
}

/// Messages delivered within T: with maximal delays and the slowest
/// resend rate, a neighbor estimate is never staler than τ (Property 6.1
/// manifested as Lemma 6.5's estimate quality).
#[test]
fn estimate_staleness_bounded_by_tau() {
    let n = 6;
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let schedule = TopologySchedule::static_graph(n, generators::ring(n));
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
        .drift_model(DriftModel::SplitExtremes, 100.0)
        .delay(DelayStrategy::Max)
        .build_with(|_| GradientNode::new(params));
    // After the first ΔT + D, every node has all its neighbors in Γ.
    let mut t = params.delta_t() + model().d + 1.0;
    while t < 100.0 {
        sim.run_until(at(t));
        for i in 0..n {
            let u = node(i);
            let hw = sim.hardware(u);
            let gn = sim.node(u);
            let gamma: Vec<NodeId> = gn.gamma().collect();
            assert_eq!(gamma.len(), 2, "ring node {i} should have 2 Γ-neighbors");
            for v in gamma {
                // Lemma 6.5: L^v_u(t) >= L_v(t − τ).
                let est = gn.estimate_of(v, hw).unwrap();
                let actual_then = {
                    // L_v(t − τ): rewind via a bound — L_v decreased by at
                    // most (1+ρ)τ from now.
                    sim.logical(v) - (1.0 + model().rho) * params.tau()
                };
                assert!(
                    est >= actual_then - 1e-6,
                    "node {i}: estimate of {v:?} too stale: {est} < {actual_then}"
                );
            }
        }
        t += 7.0;
    }
}

/// After an edge is removed and the removal discovered, the endpoints
/// drop each other from Γ and Υ within bounded time (Property 6.2's
/// converse direction).
#[test]
fn removal_clears_neighbor_sets_within_bounds() {
    let params = AlgoParams::with_minimal_b0(model(), 2, 0.5);
    let e = Edge::between(0, 1);
    let schedule = TopologySchedule::new(2, [e], vec![remove_at(50.0, e)]);
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
        .discovery(DiscoveryDelay::Constant(2.0))
        .delay(DelayStrategy::Max)
        .build_with(|_| GradientNode::new(params));
    sim.run_until(at(49.0));
    assert_eq!(sim.node(node(0)).gamma().count(), 1);
    // Removal at 50, discovered at 52; Γ and Υ empty right after.
    sim.run_until(at(52.5));
    for i in 0..2 {
        assert_eq!(
            sim.node(node(i)).gamma().count(),
            0,
            "node {i} Γ not cleared"
        );
        assert_eq!(
            sim.node(node(i)).upsilon().count(),
            0,
            "node {i} Υ not cleared"
        );
    }
}

/// A silent neighbor (edge removed but removal *undiscovered* due to the
/// lost timer firing first) is dropped from Γ after ΔT′ subjective time —
/// the lost-timer path of Algorithm 2.
#[test]
fn lost_timer_drops_silent_neighbors() {
    let params = AlgoParams::with_minimal_b0(model(), 2, 0.5);
    let e = Edge::between(0, 1);
    let schedule = TopologySchedule::new(2, [e], vec![remove_at(50.0, e)]);
    // Discovery takes (almost) the full D = 2; the lost timer ΔT′ ≈ 1.53
    // fires first, so Γ must already be empty before the discover event.
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
        .discovery(DiscoveryDelay::Constant(1.999))
        .delay(DelayStrategy::Zero)
        .build_with(|_| GradientNode::new(params));
    // Just before the discovery instant (50 + 1.999), but after
    // 50 + ΔT′/(1−ρ):
    let check = 50.0 + params.delta_t_prime() / (1.0 - model().rho) + 0.05;
    assert!(check < 51.999, "test setup: lost timer must beat discovery");
    sim.run_until(at(check));
    for i in 0..2 {
        assert_eq!(
            sim.node(node(i)).gamma().count(),
            0,
            "node {i} should have timed out its silent neighbor"
        );
        // …but the neighbor is still in Υ (only discovery removes it).
        assert_eq!(sim.node(node(i)).upsilon().count(), 1);
    }
}

/// Both endpoints of a persistent edge end up in each other's Γ within
/// ΔT + D (Property 6.2).
#[test]
fn persistent_edge_joins_gamma_within_bound() {
    let params = AlgoParams::with_minimal_b0(model(), 3, 0.5);
    let schedule = TopologySchedule::static_graph(3, generators::path(3)).with_extra_events(vec![
        gradient_clock_sync::net::schedule::add_at(30.0, Edge::between(0, 2)),
    ]);
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
        .delay(DelayStrategy::Max)
        .build_with(|_| GradientNode::new(params));
    let deadline = 30.0 + params.delta_t() + model().d;
    sim.run_until(at(deadline));
    assert!(sim.node(node(0)).gamma().any(|v| v == node(2)));
    assert!(sim.node(node(2)).gamma().any(|v| v == node(0)));
}

/// `Lmax` rate bound (Property 6.7): the network-wide max estimate never
/// advances faster than 1+ρ, across any adversary we can throw at it.
#[test]
fn lmax_rate_bounded() {
    let n = 8;
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let schedule = churn::staggered_ring(n, 8.0, 2.0, 5.0, 200.0);
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
        .drift_model(DriftModel::RandomWalk { step: 2.0 }, 200.0)
        .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
        .seed(3)
        .build_with(|_| GradientNode::new(params));
    let lmax_of = |sim: &Simulator<GradientNode>| {
        (0..n)
            .map(|i| sim.max_estimate_of(node(i)))
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let mut t = 0.0;
    let mut prev = lmax_of(&sim);
    while t < 200.0 {
        t += 2.0;
        sim.run_until(at(t));
        let cur = lmax_of(&sim);
        assert!(
            cur - prev <= (1.0 + model().rho) * 2.0 + 1e-6,
            "Lmax advanced too fast at t={t}: {}",
            cur - prev
        );
        assert!(cur >= prev, "Lmax decreased");
        prev = cur;
    }
}
