//! Cross-crate integration tests: one test per headline claim of the
//! paper, at sizes small enough for CI. The bench binaries run the same
//! pipelines at full size.

use gcs_clocks::ScheduleDrift;
use gcs_net::ScheduleSource;
use gradient_clock_sync::lowerbound::Theorem41Scenario;
use gradient_clock_sync::net::schedule::add_at;
use gradient_clock_sync::prelude::*;

fn model() -> ModelParams {
    ModelParams::new(0.01, 1.0, 2.0)
}

/// Theorem 6.9: global skew ≤ G(n) across topologies, drift patterns and
/// delay adversaries.
#[test]
fn theorem_6_9_global_skew() {
    let n = 12;
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let topologies: Vec<(&str, Vec<Edge>)> = vec![
        ("path", generators::path(n)),
        ("ring", generators::ring(n)),
        ("star", generators::star(n, 0)),
        ("tree", generators::binary_tree(n)),
        ("grid", generators::grid(3, 4)),
    ];
    for (name, edges) in topologies {
        for (dname, drift) in [
            ("split", DriftModel::SplitExtremes),
            ("blocks", DriftModel::FastUpTo(n / 2)),
            ("walk", DriftModel::RandomWalk { step: 5.0 }),
        ] {
            let schedule = TopologySchedule::static_graph(n, edges.clone());
            let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
                .drift_model(drift, 200.0)
                .delay(DelayStrategy::Max)
                .seed(1)
                .build_with(|_| GradientNode::new(params));
            let mut rec = Recorder::new(2.0).with_monitor(InvariantMonitor::new(params));
            rec.run(&mut sim, at(200.0));
            rec.monitor().unwrap().assert_clean();
            assert!(
                rec.peak_global_skew() <= params.global_skew_bound(),
                "{name}/{dname}: {} > G(n)",
                rec.peak_global_skew()
            );
        }
    }
}

/// Theorem 6.12 / Corollary 6.13: settled edges stay within the stable
/// local skew bound; a freshly inserted high-skew edge obeys the dynamic
/// envelope as it ages.
#[test]
fn corollary_6_13_dynamic_local_skew() {
    let rho = 0.05;
    let model = ModelParams::new(rho, 1.0, 2.0);
    let n = 16;
    let params = AlgoParams::with_minimal_b0(model, n, 0.5);
    // Cluster merge with ~4x the stable bound of skew.
    let target = 4.0 * params.stable_local_skew();
    let t_bridge = target / (2.0 * rho);
    let half = n / 2;
    let bridge = Edge::between(half - 1, half);
    let mut edges: Vec<Edge> = (0..half - 1).map(|i| Edge::between(i, i + 1)).collect();
    edges.extend((half..n - 1).map(|i| Edge::between(i, i + 1)));
    let schedule = TopologySchedule::static_graph(n, edges.clone())
        .with_extra_events(vec![add_at(t_bridge, bridge)]);
    let clocks: Vec<HardwareClock> = (0..n)
        .map(|i| HardwareClock::constant(if i < half { 1.0 + rho } else { 1.0 - rho }, rho))
        .collect();
    let mut sim = SimBuilder::topology(model, ScheduleSource::new(schedule))
        .drift(ScheduleDrift::new(clocks))
        .delay(DelayStrategy::Max)
        .build_with(|_| GradientNode::new(params));
    sim.run_until(at(t_bridge));
    let initial = (sim.logical(bridge.lo()) - sim.logical(bridge.hi())).abs();
    assert!(initial > 2.0 * params.stable_local_skew());
    let horizon = t_bridge + 2.0 * params.w() + 100.0;
    let mut t = t_bridge;
    while t < horizon {
        t += 2.0;
        sim.run_until(at(t));
        let age = t - t_bridge;
        let skew = (sim.logical(bridge.lo()) - sim.logical(bridge.hi())).abs();
        assert!(
            skew <= params.dynamic_local_skew(age) + 1e-6,
            "age {age}: bridge skew {skew} above envelope {}",
            params.dynamic_local_skew(age)
        );
        for e in &edges {
            let s = (sim.logical(e.lo()) - sim.logical(e.hi())).abs();
            assert!(
                s <= params.stable_local_skew() + 1e-6,
                "old edge {e:?} skew {s} above stable bound at age {age}"
            );
        }
    }
    // And it settled.
    let final_skew = (sim.logical(bridge.lo()) - sim.logical(bridge.hi())).abs();
    assert!(final_skew <= params.stable_local_skew());
}

/// Lemma 4.2 / Theorem 4.1: the masking adversary builds the guaranteed
/// skew against the real algorithm on the two-chain network.
#[test]
fn theorem_4_1_lower_bound_pipeline() {
    let n = 20;
    let sc = Theorem41Scenario::new(n, 2.0, 0.01, 1.0);
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let t1 = sc.ready_time() + 10.0;
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(sc.schedule()))
        .drift(ScheduleDrift::new(sc.beta_clocks()))
        .delay(sc.beta_delays())
        .build_with(|_| GradientNode::new(params));
    sim.run_until(at(t1));
    let skew_uv = (sim.logical(sc.u()) - sim.logical(sc.v())).abs();
    assert!(skew_uv >= sc.skew_bound());

    // Lemma 4.3 placement on the measured B-chain clocks.
    let b_clocks: Vec<f64> = sc.b_chain().iter().map(|&w| sim.logical(w)).collect();
    let d = b_clocks
        .windows(2)
        .map(|w| (w[0] - w[1]).abs())
        .fold(0.0f64, f64::max)
        .max(1e-3);
    let i_skew = skew_uv / 3.0;
    if i_skew > 2.0 * d {
        let edges = sc.place_new_edges(&b_clocks, i_skew, d);
        assert!(!edges.is_empty());
        // Every placed edge carries the prescribed skew.
        let chain = sc.b_chain();
        for e in &edges {
            let pos = |w: NodeId| chain.iter().position(|&x| x == w).unwrap();
            let gap = (b_clocks[pos(e.lo())] - b_clocks[pos(e.hi())]).abs();
            assert!(gap >= i_skew - d - 1e-6 && gap <= i_skew + 1e-6);
        }
    }
}

/// Section 3.3 validity: logical clocks are strictly increasing with rate
/// at least 1/2 under heavy churn, message loss and drift.
#[test]
fn validity_under_heavy_churn() {
    let n = 10;
    let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
    let schedule = churn::rotating_star(n, 10.0, 4.0, 300.0);
    let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
        .drift_model(DriftModel::Alternating { period: 15.0 }, 300.0)
        .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
        .seed(23)
        .build_with(|_| GradientNode::new(params));
    let mut prev = sim.logical_snapshot();
    let mut t = 0.0;
    while t < 300.0 {
        t += 5.0;
        sim.run_until(at(t));
        let cur = sim.logical_snapshot();
        for (i, (a, b)) in prev.iter().zip(cur.iter()).enumerate() {
            let rate = (b - a) / 5.0;
            assert!(rate >= 0.5, "node {i} rate {rate} < 1/2 at t={t}");
        }
        prev = cur;
    }
}

/// Determinism across the full stack: identical seeds give bit-identical
/// executions even with churn, jitter and random drift.
#[test]
fn full_stack_determinism() {
    let run = || {
        let n = 12;
        let params = AlgoParams::with_minimal_b0(model(), n, 0.5);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(77);
        let schedule = churn::random_churn(
            n,
            generators::path(n),
            6,
            (3.0, 8.0),
            (1.0, 4.0),
            150.0,
            &mut rng,
        );
        let mut sim = SimBuilder::topology(model(), ScheduleSource::new(schedule))
            .drift_model(DriftModel::RandomWalk { step: 3.0 }, 150.0)
            .delay(DelayStrategy::Uniform { lo: 0.0, hi: 1.0 })
            .seed(99)
            .build_with(|_| GradientNode::new(params));
        sim.run_until(at(150.0));
        (sim.logical_snapshot(), *sim.stats())
    };
    let (a1, s1) = run();
    let (a2, s2) = run();
    assert_eq!(a1, a2);
    assert_eq!(s1, s2);
}
