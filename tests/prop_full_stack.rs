//! Full-stack property test: random valid churn schedules, random drift,
//! random delays — Algorithm 2 must uphold every invariant of Section 3.3
//! and Property 6.3/6.7 on all of them.
//!
//! This is the library's fuzzer: it exercises the engine's drop/discovery
//! paths, the lost-timer path, re-added edges and budget resets in
//! combinations no hand-written scenario covers.

use gcs_net::ScheduleSource;
use gradient_clock_sync::prelude::*;
use gradient_clock_sync::sim::Automaton;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Clone, Debug)]
struct FuzzCase {
    n: usize,
    chords: usize,
    seed: u64,
    drift: u8,
    delay: u8,
    horizon: f64,
}

fn arb_case() -> impl Strategy<Value = FuzzCase> {
    (
        4usize..12,
        0usize..6,
        any::<u64>(),
        0u8..4,
        0u8..3,
        40.0f64..120.0,
    )
        .prop_map(|(n, chords, seed, drift, delay, horizon)| FuzzCase {
            n,
            chords,
            seed,
            drift,
            delay,
            horizon,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn algorithm_invariants_hold_on_random_worlds(case in arb_case()) {
        let model = ModelParams::new(0.01, 1.0, 2.0);
        let params = AlgoParams::with_minimal_b0(model, case.n, 0.5);
        // Random churn over a stable path backbone: the backbone keeps the
        // schedule interval-connected so the skew bounds apply.
        let mut rng = StdRng::seed_from_u64(case.seed);
        let schedule = churn::random_churn(
            case.n,
            generators::path(case.n),
            case.chords,
            (2.0, 7.0),
            (1.0, 4.0),
            case.horizon,
            &mut rng,
        );
        let drift = match case.drift {
            0 => DriftModel::Perfect,
            1 => DriftModel::SplitExtremes,
            2 => DriftModel::RandomWalk { step: 3.0 },
            _ => DriftModel::Alternating { period: 9.0 },
        };
        let delay = match case.delay {
            0 => DelayStrategy::Max,
            1 => DelayStrategy::Zero,
            _ => DelayStrategy::Uniform { lo: 0.0, hi: 1.0 },
        };
        let mut sim = SimBuilder::topology(model, ScheduleSource::new(schedule))
            .drift_model(drift, case.horizon)
            .delay(delay)
            .seed(case.seed)
            .build_with(|_| GradientNode::new(params));
        let mut rec = Recorder::new(2.0).with_monitor(InvariantMonitor::new(params));
        rec.run(&mut sim, at(case.horizon));
        let monitor = rec.monitor().unwrap();
        prop_assert!(
            monitor.violations().is_empty(),
            "violations on {case:?}: {:?}",
            monitor.violations()
        );
        // Structural node invariants at the end.
        for i in 0..case.n {
            let u = node(i);
            let hw = sim.hardware(u);
            let gn = sim.node(u);
            prop_assert!(gn.logical_clock(hw) <= gn.max_estimate(hw) + 1e-9);
            let gamma: std::collections::BTreeSet<NodeId> = gn.gamma().collect();
            let upsilon: std::collections::BTreeSet<NodeId> = gn.upsilon().collect();
            prop_assert!(gamma.is_subset(&upsilon));
        }
    }
}
