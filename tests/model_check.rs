//! Full-stack model-check integration: the bounded explorer, the seeded
//! mutants, and the ITF → engine replay pipeline, exercised end to end
//! through the facade at CI-friendly bounds.
//!
//! The heavyweight exhaustive suites run in the fail-closed `model_check`
//! bin (`cargo run --release -p gcs-mc --bin model_check`); these tests
//! keep a smaller always-on footprint inside `cargo test`.

use gradient_clock_sync::core::GradientNode;
use gradient_clock_sync::mc::explore::{suite, trace_of_trail};
use gradient_clock_sync::mc::mutant::{smoke_run, Mutation};
use gradient_clock_sync::mc::{explore, fuzz, replay_trace, Trace};

#[test]
fn explorer_verifies_the_full_n2_suite() {
    for sc in suite(2) {
        let report = explore(&sc, |_| GradientNode::new(sc.algo), 1_000_000);
        assert!(
            report.violation.is_none(),
            "{}: {}",
            sc.name,
            report.violation.unwrap().1
        );
        assert!(report.runs >= 1 && report.states > 0, "{}", sc.name);
    }
}

#[test]
fn explorer_verifies_an_n3_churn_scenario() {
    let sc = suite(3)
        .into_iter()
        .find(|sc| !sc.topology.is_empty())
        .expect("the n=3 suite has a churn scenario");
    let report = explore(&sc, |_| GradientNode::new(sc.algo), 1_000_000);
    assert!(
        report.violation.is_none(),
        "{}: {}",
        sc.name,
        report.violation.unwrap().1
    );
}

#[test]
fn seeded_mutants_fail_closed_and_the_control_passes() {
    assert_eq!(smoke_run(Mutation::None), None, "control must stay clean");
    let v = smoke_run(Mutation::LmaxOverwrite).expect("Lmax mutant must be caught");
    assert!(v.message.contains("Property 6.3"), "{v}");
    let v = smoke_run(Mutation::MissingHeadroomClause).expect("predicate mutant must be caught");
    assert!(v.message.contains("Definition 6.1"), "{v}");
}

#[test]
fn exported_trace_replays_bit_identical_through_the_engine() {
    let scenarios = suite(2);
    let sc = &scenarios[0];
    let (trace, oracle) = trace_of_trail(sc, |_| GradientNode::new(sc.algo), vec![1, 1, 0]);
    assert!(oracle.violation().is_none());
    let parsed = Trace::from_json(&trace.to_json()).expect("ITF JSON round trip");
    assert_eq!(parsed, trace);
    for threads in [1usize, 8] {
        replay_trace(&parsed, threads)
            .unwrap_or_else(|e| panic!("replay diverged at {threads} threads: {e}"));
    }
}

#[test]
fn fuzz_batch_over_the_production_node_is_clean() {
    let outcome = fuzz(2026, 4);
    assert_eq!(outcome.iterations, 4);
    assert!(
        outcome.violation.is_none(),
        "{}",
        outcome.violation.unwrap().1
    );
}
